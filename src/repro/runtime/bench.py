"""Hot-path benchmark harness (``repro bench`` / ``benchmarks/test_hotpath.py``).

One instrument, one seeded design sample (the Fig. 10 custom space),
one measurement per rung of the cache hierarchy:

* **cold** — a fresh evaluator with segment memoization disabled and the
  process-global computation caches cleared: what evaluation cost before
  incremental evaluation existed (and still costs for a one-off design).
* **warmup** — a fresh evaluator populating its segment cache for the
  first time: every design pays its own segment builds, minus whatever
  the batch's designs already share with each other.
* **segment-cached** — a second evaluator *sharing* the now-warm segment
  cache but with a fresh fingerprint cache: every design is a
  fingerprint miss, so each evaluation runs the full incremental path —
  look up its N segments, run the Eq. 2/3 composition. This is the
  steady state of a DSE session or a warm service answering design
  variations.
* **fingerprint-cached** — the same batch replayed against the warm
  evaluator: pure fingerprint hits, the service's replay path.
* **population kernel** — the batch scored as one population through the
  vectorized compose kernel over the warm segment table (a steady-state
  DSE generation's path; see :func:`run_population_benchmark` for the
  kernel-focused benchmark with backend comparisons).

The harness verifies that all report streams are bit-identical before
reporting any timing, so a "fast but wrong" regression cannot produce a
flattering number. Results are machine-readable
(``benchmarks/results/hotpath.json``) so the perf trajectory is tracked
across PRs.
"""

from __future__ import annotations

import json
import os
import time
from typing import List, Optional, Tuple

from repro.api import resolve_board, resolve_model
from repro.dse.space import CustomDesignSpace
from repro.runtime.batch import BatchEvaluator

#: ``--quick`` acceptance gate: segment-cached evaluation must beat the
#: cold path by at least this factor. Deliberately far below the measured
#: ratio (>= 5x on every tested host) so CI noise cannot trip it.
QUICK_SPEEDUP_THRESHOLD = 2.0

#: Canonical benchmark setting: the paper's heaviest DSE configuration.
DEFAULT_MODEL = "xception"
DEFAULT_BOARD = "vcu110"
DEFAULT_SAMPLES = 96
DEFAULT_SEED = 2025


def clear_process_caches() -> None:
    """Reset the process-global memoization the cost model accumulates.

    The parallelism search and divisor tables are ``lru_cache``-backed
    process globals; clearing them makes a "cold" measurement honestly
    cold instead of riding on earlier evaluations in the same process.
    """
    from repro.core import dataflow, parallelism
    from repro.utils import mathutils

    parallelism._search_cached.cache_clear()
    mathutils._factors_cached.cache_clear()
    dataflow.weights_tile_elements.cache_clear()
    dataflow.ifm_row_elements.cache_clear()


def _timed_batch(evaluator: BatchEvaluator, specs) -> tuple:
    start = time.perf_counter()
    reports = evaluator.evaluate_specs(specs)
    elapsed = time.perf_counter() - start
    return reports, elapsed


def run_hotpath_benchmark(
    model: str = DEFAULT_MODEL,
    board: str = DEFAULT_BOARD,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> dict:
    """Time cold vs segment-cached vs fingerprint-cached evaluation.

    Returns a JSON-ready dict; ``identical`` is True only when all three
    evaluation paths produced bit-identical report streams.
    """
    graph = resolve_model(model)
    fpga = resolve_board(board)
    space = CustomDesignSpace(graph.conv_specs())
    designs = list(space.sample(samples, seed=seed))
    specs = [design.to_spec() for design in designs]
    if not specs:
        raise ValueError("benchmark sample is empty")

    clear_process_caches()
    cold_reports, cold_time = _timed_batch(
        BatchEvaluator(graph, fpga, jobs=1, segment_cache_entries=0), specs
    )

    # Warm a segment cache from scratch (its own honest timing), then hand
    # the warm cache to a *fresh* evaluator: every design below is a
    # fingerprint miss evaluated through the incremental segment path.
    clear_process_caches()
    warm_evaluator = BatchEvaluator(graph, fpga, jobs=1)
    warm_reports, warm_time = _timed_batch(warm_evaluator, specs)

    seg_evaluator = BatchEvaluator(
        graph, fpga, jobs=1, segment_cache=warm_evaluator.segment_cache
    )
    seg_reports, seg_time = _timed_batch(seg_evaluator, specs)

    fp_reports, fp_time = _timed_batch(seg_evaluator, specs)

    # Population-kernel rung: a fresh fingerprint cache over the same warm
    # segment table, every miss composed by the batched kernel.
    kernel_evaluator = BatchEvaluator(
        graph, fpga, jobs=1, segment_cache=warm_evaluator.segment_cache
    )
    kernel_start = time.perf_counter()
    kernel_reports = [
        item.report for item in kernel_evaluator.evaluate_population(specs)
    ]
    kernel_time = time.perf_counter() - kernel_start

    identical = (
        cold_reports == warm_reports == seg_reports == fp_reports == kernel_reports
    )
    count = len(specs)
    seg_cache = seg_evaluator.segment_cache
    feasible = sum(1 for report in cold_reports if report is not None)

    def per_design(elapsed: float) -> float:
        return 1000.0 * elapsed / count

    cold_ms = per_design(cold_time)
    warm_ms = per_design(warm_time)
    seg_ms = per_design(seg_time)
    fp_ms = per_design(fp_time)
    kernel_ms = per_design(kernel_time)
    kernel_info = kernel_evaluator.cache_info().get("population_kernel", {})
    return {
        "model": model,
        "board": board,
        "samples": count,
        "feasible": feasible,
        "seed": seed,
        "identical": identical,
        "cold": {"elapsed_seconds": cold_time, "ms_per_design": cold_ms},
        "warmup": {
            "elapsed_seconds": warm_time,
            "ms_per_design": warm_ms,
            "speedup_vs_cold": cold_ms / warm_ms if warm_ms else float("inf"),
        },
        "segment_cached": {
            "elapsed_seconds": seg_time,
            "ms_per_design": seg_ms,
            "speedup_vs_cold": cold_ms / seg_ms if seg_ms else float("inf"),
            "cache": seg_cache.info() if seg_cache is not None else None,
        },
        "fingerprint_cached": {
            "elapsed_seconds": fp_time,
            "ms_per_design": fp_ms,
            "speedup_vs_cold": cold_ms / fp_ms if fp_ms else float("inf"),
        },
        "population_kernel": {
            "elapsed_seconds": kernel_time,
            "ms_per_design": kernel_ms,
            "speedup_vs_cold": cold_ms / kernel_ms if kernel_ms else float("inf"),
            "kernel": kernel_info,
        },
        "host_cpus": os.cpu_count() or 1,
    }


#: ``MCCM_REQUIRE_SPEEDUP`` acceptance gate for the population benchmark:
#: the numpy kernel must score a table-warm population at least this many
#: times faster than the cold scalar path. Measured well above 15x on
#: every tested host; 10x leaves CI noise margin.
POPULATION_SPEEDUP_THRESHOLD = 10.0


def run_population_benchmark(
    model: str = DEFAULT_MODEL,
    board: str = DEFAULT_BOARD,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> dict:
    """Time population scoring through the vectorized kernel.

    Four rungs, all over the same seeded design population:

    * **cold_scalar** — per-design evaluation, no segment table, process
      caches cleared: the pre-kernel cost of a cold population.
    * **table_build** — a fresh kernel evaluator on cold tables: the
      first generation's cost, table fills included. Honest framing: the
      table phase dominates here, so this rung is roughly cold-scalar
      speed; the kernel pays for itself from the second population on.
    * **population_numpy** / **population_python** — a fresh fingerprint
      cache over the warm table, whole population composed by the kernel
      per backend: the steady state of every DSE generation after the
      first. This is the rung the ≥10x acceptance gate reads
      (:data:`POPULATION_SPEEDUP_THRESHOLD`); the numpy rung is ``None``
      when numpy is not importable — the gate must *skip*, not
      fabricate a number.

    All produced report streams are verified bit-identical before any
    timing is reported.
    """
    from repro.runtime.tensor import numpy_or_none

    graph = resolve_model(model)
    fpga = resolve_board(board)
    space = CustomDesignSpace(graph.conv_specs())
    designs = list(space.sample(samples, seed=seed))
    specs = [design.to_spec() for design in designs]
    if not specs:
        raise ValueError("benchmark sample is empty")

    clear_process_caches()
    cold_reports, cold_time = _timed_batch(
        BatchEvaluator(
            graph, fpga, jobs=1, segment_cache_entries=0, population_kernel="off"
        ),
        specs,
    )

    clear_process_caches()
    build_evaluator = BatchEvaluator(graph, fpga, jobs=1)
    build_start = time.perf_counter()
    build_reports = [
        item.report for item in build_evaluator.evaluate_population(specs)
    ]
    build_time = time.perf_counter() - build_start
    warm_table = build_evaluator.segment_cache

    def population_rung(backend: str) -> Tuple[list, float, dict]:
        evaluator = BatchEvaluator(
            graph, fpga, jobs=1, segment_cache=warm_table, tensor_backend=backend
        )
        start = time.perf_counter()
        reports = [item.report for item in evaluator.evaluate_population(specs)]
        elapsed = time.perf_counter() - start
        return reports, elapsed, evaluator.cache_info().get("population_kernel", {})

    python_reports, python_time, python_info = population_rung("python")
    have_numpy = numpy_or_none() is not None
    if have_numpy:
        numpy_reports, numpy_time, numpy_info = population_rung("numpy")
    else:
        numpy_reports, numpy_time, numpy_info = None, None, None

    identical = cold_reports == build_reports == python_reports
    if have_numpy:
        identical = identical and cold_reports == numpy_reports
    count = len(specs)
    feasible = sum(1 for report in cold_reports if report is not None)

    def rung(elapsed: Optional[float], extra: Optional[dict] = None) -> Optional[dict]:
        if elapsed is None:
            return None
        ms = 1000.0 * elapsed / count
        cold_ms = 1000.0 * cold_time / count
        entry = {
            "elapsed_seconds": elapsed,
            "ms_per_design": ms,
            "speedup_vs_cold": cold_ms / ms if ms else float("inf"),
        }
        if extra is not None:
            entry["kernel"] = extra
        return entry

    return {
        "model": model,
        "board": board,
        "samples": count,
        "feasible": feasible,
        "seed": seed,
        "identical": identical,
        "numpy_available": have_numpy,
        "cold_scalar": rung(cold_time),
        "table_build": rung(build_time),
        "population_python": rung(python_time, python_info),
        "population_numpy": rung(numpy_time, numpy_info),
        "host_cpus": os.cpu_count() or 1,
    }


def format_hotpath_result(result: dict) -> str:
    """Human-readable rendering of :func:`run_hotpath_benchmark` output."""
    seg = result["segment_cached"]
    fp = result["fingerprint_cached"]
    kernel = result["population_kernel"]
    cache = seg.get("cache") or {}
    warm = result["warmup"]
    lines = [
        f"MCCM hot path: {result['model']} on {result['board']}, "
        f"{result['samples']} sampled designs (seed {result['seed']}), "
        f"{result['host_cpus']} CPU(s)",
        "",
        f"cold (full rebuild):   {result['cold']['ms_per_design']:8.3f} ms/design",
        f"segment-cache warmup:  {warm['ms_per_design']:8.3f} ms/design   "
        f"{warm['speedup_vs_cold']:6.1f}x vs cold",
        f"segment-cached:        {seg['ms_per_design']:8.3f} ms/design   "
        f"{seg['speedup_vs_cold']:6.1f}x vs cold",
        f"fingerprint-cached:    {fp['ms_per_design']:8.3f} ms/design   "
        f"{fp['speedup_vs_cold']:6.1f}x vs cold",
        f"population kernel:     {kernel['ms_per_design']:8.3f} ms/design   "
        f"{kernel['speedup_vs_cold']:6.1f}x vs cold   "
        f"({kernel.get('kernel', {}).get('backend', '?')} backend)",
        "",
        f"segment cache: {cache.get('entries', 0)} entries, "
        f"{cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses "
        f"({100 * cache.get('hit_rate', 0.0):.0f}%), "
        f"{cache.get('evaluations', 0)} block evaluations computed",
        f"reports bit-identical across all paths: {result['identical']}",
    ]
    return "\n".join(lines)


def write_hotpath_json(result: dict, path: str) -> None:
    """Write the benchmark result where CI / the benchmark suite expect it."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(result, stream, indent=2, sort_keys=True)
        stream.write("\n")


def check_hotpath_result(
    result: dict, threshold: float = QUICK_SPEEDUP_THRESHOLD
) -> List[str]:
    """Guard-rail verdicts for ``repro bench --quick`` (empty = pass)."""
    problems: List[str] = []
    if not result["identical"]:
        problems.append(
            "segment-cached reports are NOT bit-identical to the cold path"
        )
    speedup = result["segment_cached"]["speedup_vs_cold"]
    if speedup < threshold:
        problems.append(
            f"segment-cached evaluation is only {speedup:.2f}x faster than "
            f"cold (guard threshold {threshold:.1f}x)"
        )
    return problems
