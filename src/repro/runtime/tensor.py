"""Tensor-backend glue for the population kernel.

The core's :class:`~repro.core.cost.vector.PopulationKernel` composes
whole populations through eight elementwise column operations. This
module provides the runtime's implementations of that contract:

* :class:`NumpyOps` — float64/int64 arrays, used when numpy imports;
* the core's own :class:`~repro.core.cost.vector.PurePythonOps` —
  plain lists, always available (the library stays stdlib-only at its
  core; numpy is an optional extra).

Selection: :func:`get_backend` honors an explicit name, then the
``MCCM_TENSOR`` environment variable (``numpy`` | ``python`` | ``auto``),
then auto-detection. Requesting ``numpy`` without numpy installed raises
— a silent fallback would make "I benchmarked the numpy path" a lie.

Both backends are bit-exact with the scalar path (the kernel's
sequential-accumulation discipline plus its 2**53 guards make int64 /
float64 lanes behave exactly like Python ints and floats); the oracle in
``tests/core/test_vector_oracle.py`` compares all of them byte-for-byte.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.core.cost.vector import PurePythonOps

#: Environment override consulted by :func:`get_backend`.
TENSOR_ENV = "MCCM_TENSOR"

_UNSET = object()
_NUMPY = _UNSET


def numpy_or_none():
    """The imported numpy module, or ``None`` when unavailable (cached)."""
    global _NUMPY
    if _NUMPY is _UNSET:
        try:
            import numpy
        except ImportError:
            _NUMPY = None
        else:
            _NUMPY = numpy
    return _NUMPY


class NumpyOps:
    """The numpy tensor backend: float64 / int64 column arrays.

    Mirrors :class:`~repro.core.cost.vector.PurePythonOps` operation for
    operation. Reductions across block positions stay *sequential* in the
    kernel (one ``add``/``maximum`` per position) — vectorization is
    across the population axis — so float results match Python's
    left-to-right accumulation bit-for-bit.
    """

    name = "numpy"

    def __init__(self) -> None:
        np = numpy_or_none()
        if np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is not importable; "
                "install numpy or use the 'python' backend"
            )
        self._np = np

    def floats(self, values: Sequence[float]):
        return self._np.asarray(values, dtype=self._np.float64)

    def ints(self, values: Sequence[int]):
        return self._np.asarray(values, dtype=self._np.int64)

    def bools(self, values: Sequence[bool]):
        return self._np.asarray(values, dtype=bool)

    @staticmethod
    def add(a, b):
        return a + b

    def maximum(self, a, b):
        return self._np.maximum(a, b)

    @staticmethod
    def divide(a, scalar):
        return a / scalar

    def where(self, mask, a, b):
        return self._np.where(mask, a, b)

    @staticmethod
    def tolist(column) -> list:
        return column.tolist()


def available_backends() -> List[str]:
    """Backend names usable in this interpreter (``python`` always is)."""
    names = ["python"]
    if numpy_or_none() is not None:
        names.append("numpy")
    return names


def get_backend(name: Optional[str] = None):
    """Resolve a tensor backend by name, env override, or auto-detection.

    ``None``/``"auto"`` consults ``$MCCM_TENSOR`` and falls back to numpy
    when importable, pure Python otherwise. Explicit ``"numpy"`` raises
    if numpy is missing; explicit ``"python"`` always works.
    """
    if name is None or name == "auto":
        name = os.environ.get(TENSOR_ENV, "auto").strip().lower() or "auto"
    if name == "auto":
        name = "numpy" if numpy_or_none() is not None else "python"
    if name == "numpy":
        return NumpyOps()
    if name == "python":
        return PurePythonOps()
    raise ValueError(
        f"unknown tensor backend {name!r}; expected 'numpy', 'python', or 'auto'"
    )
