"""Stable fingerprints for evaluation requests.

A cache key must identify everything the cost model's output depends on:
the CNN's convolution workload, the FPGA resource budget, the arithmetic
precision, and the architecture spec being evaluated. The fingerprint is a
SHA-256 digest of a canonical JSON rendering of those inputs, so keys are

* stable across processes and python versions (no ``hash()`` randomization),
* insensitive to object identity (two equal specs share a key), and
* safe to use as on-disk file names.

``CACHE_SCHEMA_VERSION`` is folded into every digest; bump it whenever the
cost model's semantics change so stale on-disk caches invalidate themselves.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict
from typing import Any, Dict

from repro.cnn.graph import CNNGraph
from repro.core.notation import ArchitectureSpec
from repro.hw.boards import FPGABoard
from repro.hw.datatypes import Precision

#: Bump when CostReport semantics or the cost model change incompatibly.
#: v2: contexts derive from graph *content* (conv specs), not the model name,
#: so renamed custom models share cache entries and edited ones never collide.
CACHE_SCHEMA_VERSION = 2


def _spec_payload(spec: ArchitectureSpec) -> Dict[str, Any]:
    return {
        "name": spec.name,
        "coarse_pipelined": spec.coarse_pipelined,
        "dual_tail": spec.dual_tail,
        "blocks": [
            [block.start_layer, block.end_layer, block.ce_count, block.ce_id]
            for block in spec.blocks
        ],
    }


def context_payload(
    graph: CNNGraph, board: FPGABoard, precision: Precision
) -> Dict[str, Any]:
    """The per-(CNN, board, precision) part of every fingerprint.

    The CNN contributes only its full conv-spec list — the graph *content*
    the cost model consumes, never the model's display name. Two
    registrations of the same graph under different names therefore share
    every cache entry, and an edited graph re-registered under its old name
    can never collide with stale cached results.
    """
    board_payload = asdict(board)
    # Same rule for boards: the resource budget is content, the name is not.
    board_payload.pop("name", None)
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "conv_specs": [asdict(spec) for spec in graph.conv_specs()],
        "board": board_payload,
        "precision": asdict(precision),
    }


def _jsonify(value: Any) -> Any:
    """Canonical encoding for non-JSON leaves (enums, mostly)."""
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


def _digest(payload: Any) -> str:
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonify
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def context_fingerprint(
    graph: CNNGraph, board: FPGABoard, precision: Precision
) -> str:
    """Digest of the evaluation context (CNN + board + precision)."""
    return _digest(context_payload(graph, board, precision))


def spec_fingerprint(context: str, spec: ArchitectureSpec) -> str:
    """Cache key for one architecture spec under a context fingerprint."""
    return _digest({"context": context, "spec": _spec_payload(spec)})


def fingerprint(
    graph: CNNGraph,
    board: FPGABoard,
    precision: Precision,
    spec: ArchitectureSpec,
) -> str:
    """One-shot cache key; prefer the split form when batching many specs."""
    return spec_fingerprint(context_fingerprint(graph, board, precision), spec)
