"""Segment-memoized incremental evaluation (the MCCM hot-path cache).

The custom design space (Fig. 10) is a space of *partitions* of one fixed
layer list: two designs that differ in a single cut share every other
segment. The fingerprint cache in :mod:`repro.runtime.cache` only helps
when the *whole design* repeats; this module memoizes the expensive
sub-design work so that evaluating a new design degenerates to "look up
its N segments, then run the cheap Eq. 2/3 pipeline composition":

* **fitted parallelism** — the bounded divisor search behind
  :func:`~repro.core.parallelism.choose_parallelism`, keyed by the PE
  budget and the exact layer set an engine serves;
* **buffer footprints** — a block's mandatory/ideal on-chip requirement
  (Eq. 4/5), consumed repeatedly by the BRAM allocator;
* **block evaluations** — the full :class:`~repro.core.cost.results.BlockEvaluation`
  of one built segment under a given buffer allocation and boundary
  traffic (Eq. 1/2/3 + the Eq. 6/7 access model).

Keys are canonical *segment signatures*: the layer indices the segment
covers plus the outcome of engine fitting (PE count, unrolling degrees,
dataflow) and the evaluation inputs (allocated bytes, boundary bytes).
Everything else a block's cost depends on — the CNN's conv shapes, the
board bandwidth, the arithmetic precision — is fixed per cache instance:
a cache is bound to one evaluation context (see :meth:`SegmentCostCache.bind`)
and refuses to serve another, so caches can never leak results across
(model, board, precision) contexts.

Cached block evaluations are stored exactly as the cold path computed
them and *rebased* on reuse: block names and segment indices/labels are
position-dependent (``B3``, ``B3.r2``), so a hit from a different
position is relabeled field-for-field while every cost number is carried
over verbatim. Composed reports are therefore bit-identical to cold-path
reports — the property ``tests/runtime/test_segcache.py`` locks in.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Any, Hashable, Optional, Sequence, Tuple

from repro.cnn.graph import ConvSpec
from repro.core.cost.results import BlockEvaluation
from repro.core.engine import ComputeEngine
from repro.core.parallelism import ParallelismStrategy, choose_parallelism
from repro.utils.errors import MCCMError

#: Default capacity. A segment is tiny (a few dataclasses), so this is
#: generous; DSE rounds over one CNN produce far fewer distinct segments.
DEFAULT_SEGMENT_ENTRIES = 8192


def engine_signature(engine: ComputeEngine) -> Tuple[Hashable, ...]:
    """What an engine contributes to a segment's cost: its PE count, its
    fitted unrolling degrees, and its dataflow — not its (positional) name."""
    return (
        engine.pe_count,
        engine.strategy.degrees,
        engine.dataflow.value,
    )


def segment_key(block: Any) -> Tuple[Hashable, ...]:
    """Canonical signature of one built segment (block), name-independent.

    Two blocks with the same signature produce identical cost numbers for
    identical ``evaluate`` inputs within one evaluation context: the key
    carries the layer identities and the *outcome* of engine fitting, which
    together determine Eq. 1 cycles, tiling, accesses, and buffers.
    """
    layer_ids = tuple(spec.index for spec in block.specs)
    kind = block.kind
    if kind == "single":
        engines: Tuple[Tuple[Hashable, ...], ...] = (engine_signature(block.engine),)
    elif kind == "pipelined":
        engines = tuple(engine_signature(engine) for engine in block.engines)
    elif kind == "dual":
        engines = (
            engine_signature(block.dw_engine),
            engine_signature(block.std_engine),
        )
    else:  # pragma: no cover - new block kinds must opt in explicitly
        raise MCCMError(f"unknown block kind {kind!r} for segment caching")
    return (kind, layer_ids, engines)


def _rebased(
    evaluation: BlockEvaluation, name: str, segment_index: int
) -> BlockEvaluation:
    """Relabel a cached evaluation for its position in the current design.

    Only the position-dependent fields move: the block name, each segment's
    running index, and each segment label's block-name prefix (``B3`` /
    ``B3.r2`` → ``B1`` / ``B1.r2``). Every cost figure is reused verbatim.
    """
    base = evaluation.segments[0].index if evaluation.segments else segment_index
    if evaluation.name == name and base == segment_index:
        return evaluation
    old = evaluation.name
    segments = tuple(
        replace(
            segment,
            index=segment_index + offset,
            label=name + segment.label[len(old):],
        )
        for offset, segment in enumerate(evaluation.segments)
    )
    return replace(evaluation, name=name, segments=segments)


class SegmentCostCache:
    """A bounded LRU of per-segment build and cost results for one context.

    Parameters
    ----------
    max_entries:
        Capacity across all record kinds (strategies, footprints,
        evaluations). Least-recently-used records are evicted first.
    context:
        Optional context fingerprint
        (:func:`repro.runtime.fingerprint.context_fingerprint`). When set —
        :class:`~repro.runtime.BatchEvaluator` always sets it — the cache
        refuses to :meth:`bind` to a different context, guaranteeing
        isolation between (model, board, precision) worlds.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_SEGMENT_ENTRIES,
        context: Optional[str] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.context = context
        self._entries: "OrderedDict[Tuple[Hashable, ...], Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Block evaluations computed (eval-kind misses) — the work the
        #: cache exists to avoid repeating.
        self.evaluations = 0

    # --- context isolation ----------------------------------------------------
    def bind(self, context: str) -> "SegmentCostCache":
        """Attach the cache to an evaluation context (idempotent).

        Raises :class:`MCCMError` when the cache already serves a different
        context: segment keys are only unique *within* one
        (model, board, precision) world.
        """
        if self.context is None:
            self.context = context
        elif self.context != context:
            raise MCCMError(
                "segment cache is bound to a different evaluation context "
                "(one cache per (model, board, precision))"
            )
        return self

    # --- LRU plumbing ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def _get(self, key: Tuple[Hashable, ...]) -> Optional[Any]:
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def _put(self, key: Tuple[Hashable, ...], value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def info(self) -> dict:
        """Introspection snapshot (CLI ``bench``, service ``/healthz``)."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evaluations": self.evaluations,
        }

    # --- memoized segment work ------------------------------------------------
    def strategy(
        self, pe_budget: int, specs: Sequence[ConvSpec]
    ) -> ParallelismStrategy:
        """Memoized :func:`~repro.core.parallelism.choose_parallelism`."""
        key = ("strategy", pe_budget, tuple(spec.index for spec in specs))
        found = self._get(key)
        if found is None:
            found = choose_parallelism(pe_budget, specs)
            self._put(key, found)
        return found

    def block_footprint(self, block: Any) -> Tuple[int, int]:
        """Memoized ``(mandatory_buffer_bytes, ideal_buffer_bytes)`` (Eq. 4/5)."""
        key = ("footprint", segment_key(block))
        found = self._get(key)
        if found is None:
            found = (block.mandatory_buffer_bytes(), block.ideal_buffer_bytes())
            self._put(key, found)
        return found

    def block_evaluation(
        self,
        block: Any,
        allocated_bytes: int,
        input_extra_bytes: int,
        output_extra_bytes: int,
        segment_index: int,
    ) -> BlockEvaluation:
        """Memoized ``block.evaluate(...)``, rebased to the caller's position."""
        key = (
            "eval",
            segment_key(block),
            allocated_bytes,
            input_extra_bytes,
            output_extra_bytes,
        )
        found = self._get(key)
        if found is None:
            found = block.evaluate(
                allocated_bytes,
                input_extra_bytes=input_extra_bytes,
                output_extra_bytes=output_extra_bytes,
                segment_index=segment_index,
            )
            self.evaluations += 1
            self._put(key, found)
            return found
        return _rebased(found, block.name, segment_index)
