"""Design-space exploration of custom multiple-CE accelerators (Use case 3)."""

from repro.dse.campaign import (
    Campaign,
    CampaignCell,
    CampaignError,
    CampaignResult,
    CampaignSpec,
    ParetoArchive,
    campaign_status,
    resume_campaign,
    run_campaign,
)
from repro.dse.evolve import EvolutionConfig, EvolutionEngine
from repro.dse.objectives import Objective, matches_throughput, throughput_at_most_cost
from repro.dse.sampler import DesignEvaluator, SampleStats, sample_space
from repro.dse.search import (
    EvolutionStrategy,
    GuidedStrategy,
    RandomStrategy,
    STRATEGY_NAMES,
    SearchResult,
    Strategy,
    guided_search,
    local_search,
    make_strategy,
    random_search,
)
from repro.dse.space import CustomDesign, CustomDesignSpace

__all__ = [
    "Objective",
    "matches_throughput",
    "throughput_at_most_cost",
    "DesignEvaluator",
    "SampleStats",
    "sample_space",
    "SearchResult",
    "Strategy",
    "STRATEGY_NAMES",
    "RandomStrategy",
    "GuidedStrategy",
    "EvolutionStrategy",
    "make_strategy",
    "guided_search",
    "local_search",
    "random_search",
    "EvolutionConfig",
    "EvolutionEngine",
    "Campaign",
    "CampaignCell",
    "CampaignError",
    "CampaignResult",
    "CampaignSpec",
    "ParetoArchive",
    "run_campaign",
    "resume_campaign",
    "campaign_status",
    "CustomDesign",
    "CustomDesignSpace",
]
