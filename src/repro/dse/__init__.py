"""Design-space exploration of custom multiple-CE accelerators (Use case 3)."""

from repro.dse.objectives import Objective, matches_throughput, throughput_at_most_cost
from repro.dse.sampler import DesignEvaluator, SampleStats, sample_space
from repro.dse.search import SearchResult, guided_search, local_search, random_search
from repro.dse.space import CustomDesign, CustomDesignSpace

__all__ = [
    "Objective",
    "matches_throughput",
    "throughput_at_most_cost",
    "DesignEvaluator",
    "SampleStats",
    "sample_space",
    "SearchResult",
    "guided_search",
    "local_search",
    "random_search",
    "CustomDesign",
    "CustomDesignSpace",
]
