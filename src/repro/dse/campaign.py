"""Checkpointed, resumable multi-objective DSE campaigns.

A *campaign* is a declarative grid of (model, board, precision,
architecture-space) **cells**, each searched with one of the pluggable
:mod:`~repro.dse.search` strategies — by default the NSGA-II evolution of
:mod:`~repro.dse.evolve` — while a persistent per-cell **Pareto archive**
accumulates every non-dominated design seen. Campaigns are built for
long-running, crash-prone environments:

* after every evaluation round (the initial sample or one generation) the
  engine atomically rewrites a JSON **checkpoint** holding the spec, the
  ``random.Random`` state, the scored population, and the archive (via the
  lossless :func:`~repro.core.cost.export.report_to_dict` round-trip);
* a killed campaign resumes from its checkpoint and replays the
  interrupted round from the saved RNG state, so the final front is
  **bit-identical** to an uninterrupted run with the same seed — the CI
  pipeline SIGKILLs a live campaign and asserts exactly that;
* evaluation runs through one :class:`~repro.dse.sampler.DesignEvaluator`
  per cell, so fingerprint and segment caches stay warm across
  generations, and ``jobs``/``cache_dir`` thread straight through to the
  batch runtime;
* every round also emits a typed telemetry event
  (:mod:`repro.dse.events`) — ``generation_done`` carries front size,
  hypervolume, best-per-objective and cache hit rates — appended to an
  NDJSON event log next to the checkpoint *before* the checkpoint lands,
  so a resumed campaign replays byte-stable history with no duplicate or
  missing generation numbers, and the service streams the same events
  live over ``GET /campaign/<id>/events``.

Front-ends: :func:`repro.api.run_campaign`, the ``repro campaign
run/resume/status`` CLI, and the service's ``POST /campaign`` +
``GET /campaign/<id>``. See ``docs/dse.md`` for the spec and checkpoint
formats.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.pareto import dominates, front_to_csv, hypervolume, pareto_front
from repro.core.cost.export import report_from_dict, report_to_dict
from repro.core.cost.results import CostReport
from repro.dse.events import CampaignEvent, CampaignEventBus, EventLog
from repro.dse.evolve import (
    EvolutionConfig,
    EvolutionEngine,
    ScoredDesign,
    design_key,
)
from repro.dse.sampler import DesignEvaluator
from repro.dse.search import (
    LOCAL_SEARCH_ITERATIONS,
    LOCAL_SEARCH_NEIGHBOURS,
    STRATEGY_NAMES,
    make_strategy,
)
from repro.dse.space import CustomDesign, CustomDesignSpace
from repro.hw.datatypes import (
    DEFAULT_PRECISION,
    Precision,
    precision_from_names,
    precision_to_dict,
)
from repro.rules import REGISTRY as RULES
from repro.rules.engine import evaluate_rules, has_failures
from repro.utils.errors import MCCMError, reject_unknown_fields
from repro.workloads import REGISTRY

#: Checkpoint schema version; bumped when the on-disk layout changes.
#: v2: a top-level "workloads" section embeds custom model/board
#: definitions, which resumes depend on.
CHECKPOINT_VERSION = 2

#: Cell lifecycle states as stored in the checkpoint.
CELL_PENDING, CELL_RUNNING, CELL_DONE = "pending", "running", "done"


class CampaignError(MCCMError):
    """A campaign spec or checkpoint problem (bad file, spec drift, ...)."""


# --- JSON plumbing ------------------------------------------------------------


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Write-then-rename so a SIGKILL mid-write never corrupts a checkpoint."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as error:
        # An unwritable checkpoint path is a user-input problem; keep it
        # inside the library's error hierarchy (the CLI exits 2 cleanly).
        raise CampaignError(f"cannot write checkpoint {path}: {error}") from None


def _rng_state_to_json(state: tuple) -> list:
    """``random.Random.getstate()`` -> JSON-safe form (and back below)."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def _rng_state_from_json(data: Sequence[Any]) -> tuple:
    version, internal, gauss_next = data
    return (version, tuple(internal), gauss_next)


def _precision_from_dict(data: Optional[Mapping[str, str]]) -> Precision:
    """The shared wire codec (:mod:`repro.hw.datatypes`), with campaign errors."""
    if data is None:
        return DEFAULT_PRECISION
    if not isinstance(data, Mapping):
        raise CampaignError("cell precision must be an object of datatype names")
    _reject_unknown(data, ("weights", "activations"), "cell precision")
    try:
        return precision_from_names(data)
    except ValueError as error:
        raise CampaignError(str(error)) from None


def _reject_unknown(data: Mapping[str, Any], allowed: Sequence[str], where: str) -> None:
    reject_unknown_fields(data, allowed, where, CampaignError)


# --- the declarative spec -----------------------------------------------------


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell: an evaluation context plus its architecture space."""

    model: str
    board: str
    precision: Precision = DEFAULT_PRECISION
    #: CE counts of the custom space; ``None`` = the paper's 2..11.
    ce_counts: Optional[Tuple[int, ...]] = None
    max_pipelined: Optional[int] = None

    @property
    def label(self) -> str:
        return f"{self.model}/{self.board}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "board": self.board,
            "precision": precision_to_dict(self.precision),
            "ce_counts": list(self.ce_counts) if self.ce_counts is not None else None,
            "max_pipelined": self.max_pipelined,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignCell":
        _reject_unknown(
            data,
            ("model", "board", "precision", "ce_counts", "max_pipelined"),
            "campaign cell",
        )
        for key in ("model", "board"):
            if not isinstance(data.get(key), str) or not data[key].strip():
                raise CampaignError(f"campaign cell needs a non-empty {key!r} name")
        # Resolve through the workload registry, so cells accept custom
        # models/boards (and the paper's abbreviations). Unknown names raise
        # UnknownWorkloadError — still an MCCMError, but with suggestions,
        # and the service maps it to a 404.
        model = REGISTRY.canonical_model_name(data["model"])
        board = REGISTRY.canonical_board_name(data["board"])
        ce_counts = data.get("ce_counts")
        if ce_counts is not None:
            if (
                not isinstance(ce_counts, (list, tuple))
                or not ce_counts
                or not all(
                    isinstance(count, int) and not isinstance(count, bool) and count >= 2
                    for count in ce_counts
                )
            ):
                raise CampaignError("cell ce_counts must be a list of integers >= 2")
            ce_counts = tuple(ce_counts)
        max_pipelined = data.get("max_pipelined")
        if max_pipelined is not None and (
            not isinstance(max_pipelined, int) or max_pipelined < 0
        ):
            raise CampaignError("cell max_pipelined must be a non-negative integer")
        return cls(
            model=model,
            board=board,
            precision=_precision_from_dict(data.get("precision")),
            ce_counts=ce_counts,
            max_pipelined=max_pipelined,
        )


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative description of a whole campaign (JSON-stable)."""

    cells: Tuple[CampaignCell, ...]
    name: str = "campaign"
    strategy: str = "evolve"
    seed: int = 0
    cost_metric: str = "buffers"
    # evolve strategy knobs
    population: int = 32
    generations: int = 10
    crossover_rate: float = 0.9
    mutation_rate: float = 0.9
    # random/guided strategy knobs
    samples: int = 500
    refine_top: int = 5
    #: Registered ruleset name used as a hard constraint: designs with a
    #: failed ``fail``-severity verdict never enter the Pareto archives.
    rules: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.cells:
            raise CampaignError("campaign needs at least one cell")
        if self.rules is not None:
            # Canonicalize eagerly so the fingerprint is spelling-stable;
            # unknown names raise UnknownWorkloadError (service: 404).
            object.__setattr__(
                self, "rules", RULES.canonical_ruleset_name(self.rules)
            )
        if self.strategy not in STRATEGY_NAMES:
            raise CampaignError(
                f"unknown strategy {self.strategy!r}; expected one of {STRATEGY_NAMES}"
            )
        if self.cost_metric not in ("buffers", "access"):
            raise CampaignError(
                f"cost_metric must be 'buffers' or 'access', got {self.cost_metric!r}"
            )
        # Let EvolutionConfig validate its own knobs eagerly.
        self.evolution_config()

    def evolution_config(self) -> EvolutionConfig:
        return EvolutionConfig(
            population=self.population,
            generations=self.generations,
            crossover_rate=self.crossover_rate,
            mutation_rate=self.mutation_rate,
            cost_metric=self.cost_metric,
        )

    def cell_seed(self, index: int) -> int:
        """Deterministic per-cell seed (cells are independent searches)."""
        return self.seed + index

    def budget(self) -> int:
        """Upper-bound evaluation count (used by the service's request cap)."""
        if self.strategy == "evolve":
            per_cell = self.population * (self.generations + 1)
        elif self.strategy == "guided":
            # samples plus the hill-climbing worst case of guided_search.
            per_cell = self.samples + (
                self.refine_top * LOCAL_SEARCH_ITERATIONS * LOCAL_SEARCH_NEIGHBOURS
            )
        else:
            per_cell = self.samples
        return per_cell * len(self.cells)

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "name": self.name,
            "strategy": self.strategy,
            "seed": self.seed,
            "cost_metric": self.cost_metric,
            "population": self.population,
            "generations": self.generations,
            "crossover_rate": self.crossover_rate,
            "mutation_rate": self.mutation_rate,
            "samples": self.samples,
            "refine_top": self.refine_top,
            "cells": [cell.to_dict() for cell in self.cells],
        }
        # Emitted only when set, so rules-free specs (and their sha256
        # fingerprints, which guard every existing checkpoint) are unchanged.
        if self.rules is not None:
            payload["rules"] = self.rules
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise CampaignError(
                f"campaign spec must be a JSON object, got {type(data).__name__}"
            )
        _reject_unknown(
            data,
            (
                "name",
                "strategy",
                "seed",
                "cost_metric",
                "population",
                "generations",
                "crossover_rate",
                "mutation_rate",
                "samples",
                "refine_top",
                "cells",
                "rules",
            ),
            "campaign spec",
        )
        rules = data.get("rules")
        if rules is not None and not isinstance(rules, str):
            raise CampaignError("campaign field 'rules' must be a ruleset name")
        cells = data.get("cells")
        if not isinstance(cells, (list, tuple)) or not cells:
            raise CampaignError("campaign spec needs a non-empty 'cells' list")
        for key in ("seed", "population", "generations", "samples", "refine_top"):
            if key in data and (
                isinstance(data[key], bool) or not isinstance(data[key], int)
            ):
                raise CampaignError(f"campaign field {key!r} must be an integer")
        try:
            return cls(
                cells=tuple(CampaignCell.from_dict(cell) for cell in cells),
                name=str(data.get("name", "campaign")),
                strategy=str(data.get("strategy", "evolve")).strip().lower(),
                seed=data.get("seed", 0),
                cost_metric=str(data.get("cost_metric", "buffers")),
                population=data.get("population", 32),
                generations=data.get("generations", 10),
                crossover_rate=data.get("crossover_rate", 0.9),
                mutation_rate=data.get("mutation_rate", 0.9),
                samples=data.get("samples", 500),
                refine_top=data.get("refine_top", 5),
                rules=rules,
            )
        except (TypeError, ValueError) as error:
            raise CampaignError(f"bad campaign spec: {error}") from None

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a spec file (``repro campaign run --spec campaign.json``)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise CampaignError(f"cannot read campaign spec {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise CampaignError(f"campaign spec {path} is not valid JSON: {error}") from None
        return cls.from_dict(data)

    def fingerprint(self) -> str:
        """Stable digest guarding resumes against a drifted spec file."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# --- the persistent archive ---------------------------------------------------


class ParetoArchive:
    """Every non-dominated (design, report) pair one cell has seen.

    Updates are order-deterministic: a candidate enters unless an archived
    entry dominates it (or it is the same design), and evicts the entries
    it dominates. The exported front is canonically sorted, so two
    campaigns that saw the same designs — in however many sessions —
    export byte-identical fronts.
    """

    def __init__(
        self, cost_metric: str = "buffers", entries: Sequence[ScoredDesign] = ()
    ) -> None:
        self.cost_metric = cost_metric
        self._entries: List[ScoredDesign] = []
        self._keys: set = set()
        for design, report in entries:
            self.add(design, report)

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, design: CustomDesign, report: CostReport) -> bool:
        """Offer one pair; returns whether it entered the archive."""
        key = design_key(design)
        if key in self._keys:
            return False
        survivors: List[ScoredDesign] = []
        evicted: List = []
        for other_design, other_report in self._entries:
            if dominates(other_report, report, self.cost_metric):
                return False  # dominated by an archived entry
            if dominates(report, other_report, self.cost_metric):
                evicted.append(design_key(other_design))
                continue  # the candidate evicts this entry
            survivors.append((other_design, other_report))
        survivors.append((design, report))
        self._entries = survivors
        self._keys.difference_update(evicted)
        self._keys.add(key)
        return True

    def update(self, pairs: Sequence[ScoredDesign]) -> int:
        """Offer many pairs in order; returns how many entered."""
        return sum(1 for design, report in pairs if self.add(design, report))

    def front(self) -> List[ScoredDesign]:
        """The archive in canonical order: ascending cost, then throughput,
        then notation (full determinism even under objective ties)."""
        return sorted(
            self._entries,
            key=lambda pair: (
                pair[1].metric(self.cost_metric),
                -pair[1].throughput_fps,
                pair[1].notation,
                design_key(pair[0]),
            ),
        )

    def hypervolume(self) -> float:
        """2-D hypervolume of the archive front (see :mod:`repro.analysis.pareto`).

        Archive entries are mutually non-dominated by construction, so the
        O(n^2) front sweep is skipped — this runs on every status poll.
        """
        return hypervolume(
            self._entries,
            benefit=lambda pair: pair[1].throughput_fps,
            cost=lambda pair: pair[1].metric(self.cost_metric),
            assume_front=True,
        )

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [
            {"design": design.to_dict(), "report": report_to_dict(report)}
            for design, report in self.front()
        ]

    @classmethod
    def from_dicts(
        cls, data: Sequence[Mapping[str, Any]], cost_metric: str
    ) -> "ParetoArchive":
        return cls(
            cost_metric,
            entries=[
                (
                    CustomDesign.from_dict(entry["design"]),
                    report_from_dict(entry["report"]),
                )
                for entry in data
            ],
        )


# --- per-cell progress (the checkpointable unit) ------------------------------


@dataclass
class CellProgress:
    """Everything the checkpoint stores about one cell."""

    status: str = CELL_PENDING
    #: Whether the initial sample round has completed.
    initialized: bool = False
    #: Completed evolution generations (stays 0 for one-shot strategies).
    generation: int = 0
    rng_state: Optional[tuple] = None
    population: List[ScoredDesign] = field(default_factory=list)
    archive: Optional[ParetoArchive] = None
    evaluations: int = 0
    infeasible: int = 0
    elapsed_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "initialized": self.initialized,
            "generation": self.generation,
            "rng_state": (
                _rng_state_to_json(self.rng_state) if self.rng_state is not None else None
            ),
            "population": [
                {"design": design.to_dict(), "report": report_to_dict(report)}
                for design, report in self.population
            ],
            "archive": self.archive.to_dicts() if self.archive is not None else [],
            "evaluations": self.evaluations,
            "infeasible": self.infeasible,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], cost_metric: str) -> "CellProgress":
        return cls(
            status=data["status"],
            initialized=data["initialized"],
            generation=data["generation"],
            rng_state=(
                _rng_state_from_json(data["rng_state"])
                if data.get("rng_state") is not None
                else None
            ),
            population=[
                (
                    CustomDesign.from_dict(entry["design"]),
                    report_from_dict(entry["report"]),
                )
                for entry in data["population"]
            ],
            archive=ParetoArchive.from_dicts(data["archive"], cost_metric),
            evaluations=data["evaluations"],
            infeasible=data["infeasible"],
            elapsed_seconds=data["elapsed_seconds"],
        )


# --- results ------------------------------------------------------------------


@dataclass(frozen=True)
class CellResult:
    """One cell's final (or current) standing."""

    cell: CampaignCell
    status: str
    generation: int
    evaluations: int
    infeasible: int
    elapsed_seconds: float
    front: Sequence[ScoredDesign]
    hypervolume: float

    def to_dict(self, include_front: bool = True) -> Dict[str, Any]:
        payload = {
            "model": self.cell.model,
            "board": self.cell.board,
            "precision": precision_to_dict(self.cell.precision),
            "status": self.status,
            "generation": self.generation,
            "evaluations": self.evaluations,
            "infeasible": self.infeasible,
            "elapsed_seconds": self.elapsed_seconds,
            "archive_size": len(self.front),
            "hypervolume": self.hypervolume,
        }
        if include_front:
            payload["front"] = [
                {"design": design.to_dict(), "report": report_to_dict(report)}
                for design, report in self.front
            ]
        return payload


@dataclass(frozen=True)
class CampaignResult:
    """The outcome (or live snapshot) of a campaign across all cells."""

    spec: CampaignSpec
    cells: Tuple[CellResult, ...]

    @property
    def done(self) -> bool:
        return all(cell.status == CELL_DONE for cell in self.cells)

    @property
    def total_evaluations(self) -> int:
        return sum(cell.evaluations for cell in self.cells)

    def to_dict(self, include_fronts: bool = True) -> Dict[str, Any]:
        return {
            "name": self.spec.name,
            "strategy": self.spec.strategy,
            "seed": self.spec.seed,
            "cost_metric": self.spec.cost_metric,
            "done": self.done,
            "total_evaluations": self.total_evaluations,
            "cells": [cell.to_dict(include_front=include_fronts) for cell in self.cells],
        }

    def front_csv(self) -> str:
        """Every cell's front as one CSV (the CI artifact format)."""
        entries = [
            (cell.cell.label, report)
            for cell in self.cells
            for _design, report in cell.front
        ]
        return front_to_csv(entries, self.spec.cost_metric)

    def combined_front(self) -> List[ScoredDesign]:
        """Non-dominated set across cells sharing the whole campaign's
        objective space (meaningful when cells share a model)."""
        pairs = [pair for cell in self.cells for pair in cell.front]
        return pareto_front(
            pairs,
            benefit=lambda pair: pair[1].throughput_fps,
            cost=lambda pair: pair[1].metric(self.spec.cost_metric),
        )


# --- the engine ---------------------------------------------------------------


class Campaign:
    """A runnable (and resumable) campaign bound to an optional checkpoint.

    Construct fresh with a spec, or :meth:`load` from a checkpoint file.
    :meth:`run` executes pending cells round by round, checkpointing after
    every round; killing the process at any point loses at most the round
    in flight, and a subsequent :meth:`load` + :meth:`run` replays that
    round bit-identically from the stored RNG state.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        checkpoint_path: Optional[Union[str, Path]] = None,
        *,
        jobs: Union[int, str] = "auto",
        cache_dir: Optional[Union[str, Path]] = None,
        event_log: Union[str, Path, None] = "auto",
        event_sink=None,
    ) -> None:
        self.spec = spec
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.cells: List[CellProgress] = [
            CellProgress(archive=ParetoArchive(spec.cost_metric)) for _ in spec.cells
        ]
        self._lock = threading.Lock()
        #: Telemetry fan-out: the NDJSON event log (if any) plus sinks.
        self.events = CampaignEventBus()
        self.event_log_path = self._resolve_event_log(self.checkpoint_path, event_log)
        self._event_log_attached = False
        if event_sink is not None:
            self.events.subscribe(event_sink)

    @staticmethod
    def _resolve_event_log(
        checkpoint_path: Optional[Path], event_log: Union[str, Path, None]
    ) -> Optional[Path]:
        """``"auto"`` = ``<checkpoint>.events`` (none without a checkpoint)."""
        if event_log == "auto":
            if checkpoint_path is None:
                return None
            return checkpoint_path.with_name(checkpoint_path.name + ".events")
        return Path(event_log) if event_log is not None else None

    def _attach_event_log(self, *, resume: bool) -> None:
        """Bind the on-disk log: truncate when fresh, reconcile on resume.

        On resume the log keeps exactly the longest prefix of events the
        checkpoint proves committed (see :meth:`_event_committed`) —
        preserved as original bytes — and the bus continues ``seq``
        numbering after it; the interrupted round re-emits its events.
        """
        self._event_log_attached = True
        if self.event_log_path is None:
            return
        log = EventLog(self.event_log_path)
        if resume:
            replayed = log.reconcile(self._event_committed)
            self.events.prime(replayed)
        elif self.event_log_path.exists():
            log.truncate()
        self.events.attach_log(log)

    def _event_committed(self, event: CampaignEvent) -> bool:
        """Does checkpoint state prove this logged event already happened?

        The runner appends each event *before* saving the checkpoint that
        covers it, so on resume an event is committed iff the restored
        state implies its round completed: generation events of an evolve
        cell once ``initialized`` and ``generation`` reached them, one-shot
        (random/guided) cell events only once the cell finished (one-shot
        rounds are unresumable), ``cell_done``/``campaign_done`` once the
        statuses say so. ``campaign_start`` and ``error`` are history the
        moment they are written.
        """
        if event.type in ("campaign_start", "error"):
            return True
        if event.type == "campaign_done":
            return all(cell.status == CELL_DONE for cell in self.cells)
        index = event.cell
        if index is None or not 0 <= index < len(self.cells):
            return False
        progress = self.cells[index]
        if event.type == "cell_done":
            return progress.status == CELL_DONE
        if event.type in ("generation_start", "generation_done"):
            if self.spec.strategy != "evolve":
                return progress.status == CELL_DONE
            generation = event.data.get("generation")
            if not isinstance(generation, int):
                return False
            return progress.initialized and generation <= progress.generation
        return False

    # --- persistence ---------------------------------------------------------
    @classmethod
    def load(
        cls,
        checkpoint_path: Union[str, Path],
        *,
        spec: Optional[CampaignSpec] = None,
        jobs: Union[int, str] = "auto",
        cache_dir: Optional[Union[str, Path]] = None,
        event_log: Union[str, Path, None] = "auto",
        event_sink=None,
    ) -> "Campaign":
        """Rebuild a campaign from its checkpoint (the resume path).

        When ``spec`` is given it must match the checkpointed spec's
        fingerprint — resuming a campaign under a silently edited spec
        would make the "bit-identical to uninterrupted" guarantee a lie.
        """
        path = Path(checkpoint_path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise CampaignError(f"cannot read checkpoint {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise CampaignError(
                f"checkpoint {path} is not valid JSON ({error}); "
                "was the campaign killed mid-write without the atomic rename?"
            ) from None
        if data.get("version") != CHECKPOINT_VERSION:
            raise CampaignError(
                f"checkpoint {path} has version {data.get('version')!r}, "
                f"this build reads {CHECKPOINT_VERSION}"
            )
        # Custom workloads and rulesets must be back in their registries
        # *before* the spec parses, or its cells (and its ``rules`` name)
        # would fail resolution.
        cls._restore_workloads(data.get("workloads") or {})
        cls._restore_rulesets(data.get("rulesets") or {})
        stored_spec = CampaignSpec.from_dict(data["spec"])
        if data.get("fingerprint") != stored_spec.fingerprint():
            raise CampaignError(f"checkpoint {path} fingerprint mismatch (corrupt?)")
        if spec is not None and spec.fingerprint() != stored_spec.fingerprint():
            raise CampaignError(
                "the given spec does not match the checkpointed campaign; "
                "start a fresh checkpoint for a changed spec"
            )
        campaign = cls(
            stored_spec,
            path,
            jobs=jobs,
            cache_dir=cache_dir,
            event_log=event_log,
            event_sink=event_sink,
        )
        stored_cells = data.get("cells")
        if not isinstance(stored_cells, list) or len(stored_cells) != len(
            stored_spec.cells
        ):
            raise CampaignError(f"checkpoint {path} cell count mismatch")
        try:
            campaign.cells = [
                CellProgress.from_dict(cell, stored_spec.cost_metric)
                for cell in stored_cells
            ]
        except (KeyError, TypeError, ValueError) as error:
            # The fingerprint only covers the spec, so a hand-edited or
            # damaged cells section must still fail as a checkpoint error.
            raise CampaignError(
                f"checkpoint {path} has a malformed cells section "
                f"({type(error).__name__}: {error})"
            ) from None
        # Reconcile only now: the committed-predicate needs the restored
        # cell states, and a log-less load (campaign_status) stays read-only.
        campaign._attach_event_log(resume=True)
        return campaign

    def _workload_definitions(self) -> Dict[str, Dict[str, Any]]:
        """Full definitions of every *custom* model/board the spec names.

        Embedding them makes the checkpoint self-contained: a resumed
        campaign re-registers its workloads before resolving any cell, so a
        fresh process (which has never seen the user's JSON files) still
        replays to a byte-identical front.
        """
        models: Dict[str, Any] = {}
        boards: Dict[str, Any] = {}
        for cell in self.spec.cells:
            if not REGISTRY.is_builtin_model(cell.model):
                models[cell.model] = REGISTRY.model_definition(cell.model)
            if not REGISTRY.is_builtin_board(cell.board):
                boards[cell.board] = REGISTRY.board_definition(cell.board)
        return {"models": models, "boards": boards}

    @staticmethod
    def _restore_workloads(data: Mapping[str, Any]) -> None:
        """Re-register a checkpoint's embedded workload definitions.

        Identical re-registration is a no-op; a live registration that
        *differs* from the checkpointed definition is refused — silently
        replacing either side would break the bit-identical-resume contract.
        """
        for kind, register in (
            ("models", REGISTRY.register_model),
            ("boards", REGISTRY.register_board),
        ):
            for name, definition in (data.get(kind) or {}).items():
                try:
                    register(definition, name=name, source="checkpoint")
                except MCCMError as error:
                    raise CampaignError(
                        f"checkpoint embeds {kind[:-1]} {name!r} that cannot "
                        f"be restored: {error}"
                    ) from None

    def _ruleset_definitions(self) -> Dict[str, Dict[str, Any]]:
        """Full definition of the spec's *custom* ruleset, if any.

        Embedded for the same self-containment reason as workloads: a
        resumed campaign re-registers its constraint ruleset before the
        spec parses, so the front it replays is byte-identical even in a
        process that never saw the user's rule files. Built-in rulesets
        need no embedding.
        """
        name = self.spec.rules
        if name is None or RULES.is_builtin_ruleset(name):
            return {}
        return {name: RULES.ruleset_definition(name)}

    @staticmethod
    def _restore_rulesets(data: Mapping[str, Any]) -> None:
        """Re-register a checkpoint's embedded ruleset definitions.

        Mirrors :meth:`_restore_workloads`: identical re-registration is a
        no-op; a live registration that differs is refused.
        """
        for name, definition in data.items():
            try:
                RULES.register_ruleset(definition, name=name, source="checkpoint")
            except MCCMError as error:
                raise CampaignError(
                    f"checkpoint embeds ruleset {name!r} that cannot be "
                    f"restored: {error}"
                ) from None

    def checkpoint_dict(self) -> Dict[str, Any]:
        return {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.spec.fingerprint(),
            "spec": self.spec.to_dict(),
            "workloads": self._workload_definitions(),
            "rulesets": self._ruleset_definitions(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def save(self) -> None:
        """Atomically persist the current state (no-op without a path)."""
        if self.checkpoint_path is not None:
            _atomic_write_json(self.checkpoint_path, self.checkpoint_dict())

    # --- interrogation -------------------------------------------------------
    def result(self) -> CampaignResult:
        """The campaign's current standing (thread-safe snapshot)."""
        with self._lock:
            cells = tuple(
                CellResult(
                    cell=cell,
                    status=progress.status,
                    generation=progress.generation,
                    evaluations=progress.evaluations,
                    infeasible=progress.infeasible,
                    elapsed_seconds=progress.elapsed_seconds,
                    front=tuple(progress.archive.front()),
                    hypervolume=progress.archive.hypervolume(),
                )
                for cell, progress in zip(self.spec.cells, self.cells)
            )
        return CampaignResult(spec=self.spec, cells=cells)

    @property
    def done(self) -> bool:
        with self._lock:
            return all(cell.status == CELL_DONE for cell in self.cells)

    # --- execution -----------------------------------------------------------
    def run(self, max_rounds: Optional[int] = None) -> CampaignResult:
        """Run every pending cell to completion (or ``max_rounds`` rounds).

        A *round* is one evaluation batch: a cell's initial sample, one
        evolution generation, or (for one-shot strategies) the whole cell.
        ``max_rounds`` exists for tests and cooperative interruption — the
        checkpoint left behind is exactly what a SIGKILL at the same point
        would leave.
        """
        rounds = 0
        self.save()  # an immediately-killable campaign is already resumable
        if not self._event_log_attached:
            self._attach_event_log(resume=False)
        if self.events.last_seq == 0:
            self.events.emit(
                "campaign_start",
                name=self.spec.name,
                strategy=self.spec.strategy,
                seed=self.spec.seed,
                cost_metric=self.spec.cost_metric,
                cells=[cell.label for cell in self.spec.cells],
                budget=self.spec.budget(),
                fingerprint=self.spec.fingerprint(),
            )
        index = None
        try:
            for index, cell in enumerate(self.spec.cells):
                progress = self.cells[index]
                if progress.status == CELL_DONE:
                    continue
                if max_rounds is not None and rounds >= max_rounds:
                    break
                space_kwargs: Dict[str, Any] = {}
                if cell.ce_counts is not None:
                    space_kwargs["ce_counts"] = cell.ce_counts
                if cell.max_pipelined is not None:
                    space_kwargs["max_pipelined"] = cell.max_pipelined
                graph = REGISTRY.model(cell.model)
                board = REGISTRY.board(cell.board, precision=cell.precision)
                space = CustomDesignSpace(graph.conv_specs(), **space_kwargs)
                with DesignEvaluator(
                    graph,
                    board,
                    cell.precision,
                    jobs=self.jobs,
                    cache_dir=self.cache_dir,
                ) as evaluator:
                    if self.spec.strategy == "evolve":
                        rounds = self._run_evolve_cell(
                            index, evaluator, space, rounds, max_rounds
                        )
                    else:
                        rounds = self._run_oneshot_cell(index, evaluator, space, rounds)
        except Exception as error:
            # The stream's terminal failure marker; the exception itself
            # still propagates to the caller (CLI exit 2, service "failed").
            self.events.emit(
                "error",
                cell=index,
                message=str(error),
                error_type=type(error).__name__,
            )
            raise
        result = self.result()
        if result.done and "campaign_done" not in self.events.seen_types:
            self.events.emit(
                "campaign_done",
                name=self.spec.name,
                total_evaluations=result.total_evaluations,
                cells=[
                    {
                        "cell": cell_index,
                        "label": cell_result.cell.label,
                        "front_size": len(cell_result.front),
                        "hypervolume": cell_result.hypervolume,
                        "evaluations": cell_result.evaluations,
                    }
                    for cell_index, cell_result in enumerate(result.cells)
                ],
            )
        return result

    def _admissible(self, index: int, evaluated: Sequence) -> List:
        """The evaluated pairs the spec's ruleset admits into the archive.

        With ``spec.rules`` set, any design whose report draws a failed
        ``fail``-severity verdict is rejected *before* the Pareto archive
        sees it. Filtering is deterministic (pure rule evaluation over
        deterministic reports), so interrupted and uninterrupted campaigns
        reject exactly the same designs and resumes stay byte-identical.
        The population is NOT filtered — search dynamics are unchanged;
        rules only gate what the campaign reports as its front.
        """
        if self.spec.rules is None:
            return list(evaluated)
        cell = self.spec.cells[index]
        ruleset = RULES.ruleset(self.spec.rules)
        board = REGISTRY.board(cell.board, precision=cell.precision)
        return [
            (design, report)
            for design, report in evaluated
            if not has_failures(
                evaluate_rules(
                    report, ruleset, board=board, precision=cell.precision
                )
            )
        ]

    # --- telemetry helpers ----------------------------------------------------
    def _emit_generation_done(
        self,
        index: int,
        *,
        generation: int,
        round_kind: str,
        round_evaluations: int,
        round_infeasible: int,
        round_seconds: float,
        run_stats,
    ) -> None:
        """One round's summary: archive standing + best-per-objective +
        the batch runtime's cache behaviour for the round just evaluated."""
        metric = self.spec.cost_metric
        with self._lock:
            progress = self.cells[index]
            front = progress.archive.front()
            snapshot = {
                "front_size": len(front),
                "hypervolume": progress.archive.hypervolume(),
                "evaluations": progress.evaluations,
                "infeasible": progress.infeasible,
            }
        best_throughput = max(
            (report.throughput_fps for _design, report in front), default=None
        )
        best_cost = min(
            (report.metric(metric) for _design, report in front), default=None
        )
        self.events.emit(
            "generation_done",
            cell=index,
            label=self.spec.cells[index].label,
            generation=generation,
            round=round_kind,
            round_evaluations=round_evaluations,
            round_infeasible=round_infeasible,
            round_seconds=round_seconds,
            best_throughput_fps=best_throughput,
            best_cost=best_cost,
            cost_metric=metric,
            cache_hit_rate=round(run_stats.hit_rate, 4),
            cache_memory_hits=run_stats.memory_hits,
            cache_disk_hits=run_stats.disk_hits,
            **snapshot,
        )

    def _emit_cell_done(self, index: int) -> None:
        with self._lock:
            progress = self.cells[index]
            payload = {
                "label": self.spec.cells[index].label,
                "generation": progress.generation,
                "evaluations": progress.evaluations,
                "infeasible": progress.infeasible,
                "front_size": len(progress.archive),
                "hypervolume": progress.archive.hypervolume(),
                "elapsed_seconds": round(progress.elapsed_seconds, 6),
            }
        self.events.emit("cell_done", cell=index, **payload)

    def _run_evolve_cell(
        self,
        index: int,
        evaluator: DesignEvaluator,
        space: CustomDesignSpace,
        rounds: int,
        max_rounds: Optional[int],
    ) -> int:
        progress = self.cells[index]
        config = self.spec.evolution_config()
        seed = self.spec.cell_seed(index)
        rng = random.Random(seed)
        engine = EvolutionEngine(space, config, evaluator.evaluate_batch, rng)
        if progress.initialized:
            # Resume: restore the three state values and replay from the
            # exact point the last completed round checkpointed.
            rng.setstate(progress.rng_state)
            engine.restore(progress.population, progress.generation)
        while True:
            if max_rounds is not None and rounds >= max_rounds:
                return rounds
            if progress.initialized and progress.generation >= config.generations:
                with self._lock:
                    progress.status = CELL_DONE
                    progress.rng_state = rng.getstate()
                self._emit_cell_done(index)
                self.save()
                return rounds
            # Round g: the initial sample is generation 0, evolution steps
            # are 1..generations. generation_start precedes the batch so
            # watchers see long rounds begin, not only end.
            generation = progress.generation + 1 if progress.initialized else 0
            self.events.emit(
                "generation_start",
                cell=index,
                label=self.spec.cells[index].label,
                generation=generation,
                round="initial_sample" if generation == 0 else "generation",
                population=config.population,
            )
            start = time.perf_counter()
            if not progress.initialized:
                evaluated = engine.initialize(seed)
                with self._lock:
                    progress.status = CELL_RUNNING
                    progress.initialized = True
            else:
                evaluated = engine.step()
            elapsed = time.perf_counter() - start
            admitted = self._admissible(index, evaluated)
            with self._lock:
                progress.archive.update(admitted)
                progress.population = list(engine.population)
                progress.generation = engine.generation
                progress.rng_state = rng.getstate()
                progress.evaluations += engine.last_submitted
                progress.infeasible += engine.last_submitted - len(evaluated)
                progress.elapsed_seconds += elapsed
            self._emit_generation_done(
                index,
                generation=generation,
                round_kind="initial_sample" if generation == 0 else "generation",
                round_evaluations=engine.last_submitted,
                round_infeasible=engine.last_submitted - len(evaluated),
                round_seconds=round(elapsed, 6),
                run_stats=evaluator.runtime.last_run,
            )
            rounds += 1
            self.save()

    def _run_oneshot_cell(
        self,
        index: int,
        evaluator: DesignEvaluator,
        space: CustomDesignSpace,
        rounds: int,
    ) -> int:
        """Random/guided strategies run a cell in one (unresumable) round."""
        progress = self.cells[index]
        with self._lock:
            progress.status = CELL_RUNNING
        self.save()
        self.events.emit(
            "generation_start",
            cell=index,
            label=self.spec.cells[index].label,
            generation=0,
            round="search",
            samples=self.spec.samples,
        )
        strategy = make_strategy(
            self.spec.strategy,
            samples=self.spec.samples,
            cost_metric=self.spec.cost_metric,
            refine_top=self.spec.refine_top,
        )
        result = strategy.search(evaluator, space, seed=self.spec.cell_seed(index))
        admitted = self._admissible(index, list(result.evaluated))
        with self._lock:
            progress.archive.update(admitted)
            progress.evaluations += result.stats.evaluated + result.stats.failed
            progress.infeasible += result.stats.failed
            progress.elapsed_seconds += result.stats.elapsed_seconds
            progress.status = CELL_DONE
        # One-shot cells finish in a single round, so the whole-cell totals
        # double as the round stats (``totals`` because guided strategies
        # run several batches through the evaluator).
        self._emit_generation_done(
            index,
            generation=0,
            round_kind="search",
            round_evaluations=result.stats.evaluated + result.stats.failed,
            round_infeasible=result.stats.failed,
            round_seconds=round(result.stats.elapsed_seconds, 6),
            run_stats=evaluator.runtime.totals,
        )
        self._emit_cell_done(index)
        self.save()
        return rounds + 1


# --- module-level conveniences (the api.py / CLI surface) ---------------------


def run_campaign(
    spec: Union[CampaignSpec, Mapping[str, Any], str, Path],
    checkpoint: Optional[Union[str, Path]] = None,
    *,
    resume: bool = False,
    jobs: Union[int, str] = "auto",
    cache_dir: Optional[Union[str, Path]] = None,
    max_rounds: Optional[int] = None,
    event_log: Union[str, Path, None] = "auto",
    event_sink=None,
) -> CampaignResult:
    """Run (or resume) a campaign; the one-call front door.

    ``spec`` is a :class:`CampaignSpec`, a spec dict, or a path to a spec
    JSON file. With ``resume=False`` an existing checkpoint file is an
    error (refuse to clobber state); with ``resume=True`` the checkpoint
    is loaded and the spec (if any) only cross-checked. ``event_log`` is
    the NDJSON telemetry log path — the default ``"auto"`` puts it next
    to the checkpoint as ``<checkpoint>.events`` (no log without a
    checkpoint); ``None`` disables it. ``event_sink`` is an optional
    callable receiving every :class:`~repro.dse.events.CampaignEvent`.
    """
    parsed: Optional[CampaignSpec]
    if isinstance(spec, CampaignSpec):
        parsed = spec
    elif isinstance(spec, Mapping):
        parsed = CampaignSpec.from_dict(spec)
    elif spec is not None:
        parsed = CampaignSpec.from_json(spec)
    else:
        parsed = None

    if resume:
        if checkpoint is None:
            raise CampaignError("resume needs a checkpoint path")
        campaign = Campaign.load(
            checkpoint,
            spec=parsed,
            jobs=jobs,
            cache_dir=cache_dir,
            event_log=event_log,
            event_sink=event_sink,
        )
    else:
        if parsed is None:
            raise CampaignError("a fresh campaign run needs a spec")
        if checkpoint is not None and Path(checkpoint).exists():
            raise CampaignError(
                f"checkpoint {checkpoint} already exists; "
                "resume it or choose a new path"
            )
        campaign = Campaign(
            parsed,
            checkpoint,
            jobs=jobs,
            cache_dir=cache_dir,
            event_log=event_log,
            event_sink=event_sink,
        )
    return campaign.run(max_rounds=max_rounds)


def resume_campaign(
    checkpoint: Union[str, Path],
    *,
    jobs: Union[int, str] = "auto",
    cache_dir: Optional[Union[str, Path]] = None,
    max_rounds: Optional[int] = None,
    event_log: Union[str, Path, None] = "auto",
    event_sink=None,
) -> CampaignResult:
    """Finish a checkpointed campaign (no-op if it already completed)."""
    return run_campaign(
        None,  # type: ignore[arg-type]
        checkpoint,
        resume=True,
        jobs=jobs,
        cache_dir=cache_dir,
        max_rounds=max_rounds,
        event_log=event_log,
        event_sink=event_sink,
    )


def campaign_status(checkpoint: Union[str, Path]) -> CampaignResult:
    """Inspect a checkpoint without evaluating anything.

    ``event_log=None`` keeps the load strictly read-only: a status poll
    must never reconcile (truncate) the event log of a campaign that is
    still running in another process.
    """
    return Campaign.load(checkpoint, event_log=None).result()
