"""Custom multiple-CE design space (Use case 3, Fig. 10).

The paper derives a custom family from its bottleneck findings: "a custom
architecture that comprises a Hybrid-like first block followed by
Segmented-like blocks". A design point is:

* ``pipelined_layers`` — the first ``p`` layers run on a pipelined-CEs
  block with one engine per layer (``p = 0`` degenerates to pure
  Segmented);
* a list of cut points partitioning the remaining layers into single-CE
  segments.

With CE counts 2..11 the space is combinatorially huge (the paper counts
roughly 97.1 billion designs for XCp); :meth:`CustomDesignSpace.size`
computes the exact count for any CNN.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.cnn.graph import ConvSpec
from repro.core.notation import ArchitectureSpec, BlockSpec
from repro.utils.errors import ResourceError


@dataclass(frozen=True)
class CustomDesign:
    """One point of the custom space, independent of any CNN instance.

    ``cuts`` are exclusive 0-based layer indices (relative to the whole
    CNN) splitting the post-pipelined layers into single-CE segments.
    """

    pipelined_layers: int
    cuts: Tuple[int, ...]
    num_layers: int

    def __post_init__(self) -> None:
        if self.pipelined_layers < 0:
            raise ResourceError("pipelined_layers must be non-negative")
        if self.pipelined_layers >= self.num_layers:
            raise ResourceError("pipelined part must leave layers for the tail")
        previous = self.pipelined_layers
        for cut in self.cuts:
            if not (previous < cut < self.num_layers):
                raise ResourceError(f"cut {cut} out of order or range")
            previous = cut

    @property
    def ce_count(self) -> int:
        return self.pipelined_layers + len(self.cuts) + 1

    def to_dict(self) -> dict:
        """JSON form (campaign checkpoints, service payloads)."""
        return {
            "pipelined_layers": self.pipelined_layers,
            "cuts": list(self.cuts),
            "num_layers": self.num_layers,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CustomDesign":
        """Inverse of :meth:`to_dict` (re-validates the invariants)."""
        return cls(
            pipelined_layers=data["pipelined_layers"],
            cuts=tuple(data["cuts"]),
            num_layers=data["num_layers"],
        )

    def to_spec(self) -> ArchitectureSpec:
        """Lower to the notation-level architecture spec."""
        blocks: List[BlockSpec] = []
        if self.pipelined_layers:
            blocks.append(
                BlockSpec(
                    start_layer=1,
                    end_layer=self.pipelined_layers,
                    ce_count=self.pipelined_layers,
                )
            )
        bounds = [self.pipelined_layers] + list(self.cuts) + [self.num_layers]
        for start, end in zip(bounds, bounds[1:]):
            blocks.append(BlockSpec(start_layer=start + 1, end_layer=end, ce_count=1))
        name = f"Custom-p{self.pipelined_layers}-s{len(self.cuts) + 1}"
        return ArchitectureSpec(name=name, blocks=tuple(blocks), coarse_pipelined=True)


class CustomDesignSpace:
    """Enumerable/sampleable space of :class:`CustomDesign` points."""

    def __init__(
        self,
        specs: Sequence[ConvSpec],
        ce_counts: Sequence[int] = tuple(range(2, 12)),
        max_pipelined: Optional[int] = None,
    ) -> None:
        if not specs:
            raise ResourceError("design space needs a CNN with conv layers")
        self.num_layers = len(specs)
        self.ce_counts = tuple(sorted(set(ce_counts)))
        if not self.ce_counts or self.ce_counts[0] < 2:
            raise ResourceError("CE counts must be >= 2")
        self.max_pipelined = (
            min(max_pipelined, self.num_layers - 1)
            if max_pipelined is not None
            else self.num_layers - 1
        )

    def size(self) -> int:
        """Exact design count: sum over CE count ``n`` and pipelined depth
        ``p`` of the segment-cut combinations ``C(R - 1, m - 1)`` with
        ``R = layers - p`` remaining layers and ``m = n - p`` segments."""
        total = 0
        for n in self.ce_counts:
            for p in range(0, min(n, self.max_pipelined + 1)):
                m = n - p
                remaining = self.num_layers - p
                if m < 1 or remaining < m:
                    continue
                total += math.comb(remaining - 1, m - 1)
        return total

    def random_design(self, rng: random.Random) -> CustomDesign:
        """Draw one design uniformly over (n, p) with uniform random cuts."""
        for _ in range(256):
            n = rng.choice(self.ce_counts)
            p = rng.randint(0, min(n - 1, self.max_pipelined))
            m = n - p
            remaining = self.num_layers - p
            if remaining < m:
                continue
            cut_positions = sorted(
                rng.sample(range(p + 1, self.num_layers), m - 1)
            )
            return CustomDesign(
                pipelined_layers=p,
                cuts=tuple(cut_positions),
                num_layers=self.num_layers,
            )
        raise ResourceError("could not draw a feasible design")

    def sample(self, count: int, seed: int = 0) -> Iterator[CustomDesign]:
        """Yield ``count`` designs (deduplicated, deterministic for a seed)."""
        rng = random.Random(seed)
        seen = set()
        produced = 0
        attempts = 0
        limit = max(count * 50, 1000)
        while produced < count and attempts < limit:
            attempts += 1
            design = self.random_design(rng)
            key = (design.pipelined_layers, design.cuts)
            if key in seen:
                continue
            seen.add(key)
            produced += 1
            yield design

    def mutate(self, design: CustomDesign, rng: random.Random) -> CustomDesign:
        """A neighbouring design: nudge one cut, or grow/shrink the
        pipelined part (used by local search)."""
        for _ in range(64):
            choice = rng.random()
            try:
                if choice < 0.5 and design.cuts:
                    index = rng.randrange(len(design.cuts))
                    delta = rng.choice((-2, -1, 1, 2))
                    cuts = list(design.cuts)
                    cuts[index] += delta
                    return CustomDesign(
                        pipelined_layers=design.pipelined_layers,
                        cuts=tuple(sorted(cuts)),
                        num_layers=design.num_layers,
                    )
                delta = rng.choice((-1, 1))
                p = design.pipelined_layers + delta
                if p < 0 or p > self.max_pipelined:
                    continue
                cuts = tuple(cut for cut in design.cuts if cut > p)
                return CustomDesign(
                    pipelined_layers=p, cuts=cuts, num_layers=design.num_layers
                )
            except ResourceError:
                continue
        return design
