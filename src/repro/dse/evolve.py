"""NSGA-II-style multi-objective evolution over the custom design space.

The paper's Use case 3 reads improvements off a Pareto front built from a
random sample; with evaluations now segment-memoized and sub-millisecond,
a *search* that concentrates those evaluations near the front dominates a
flat sample. This module provides the evolutionary machinery the campaign
engine (:mod:`repro.dse.campaign`) steps generation by generation:

* fast non-dominated sorting and crowding distance over the bi-objective
  (maximize throughput, minimize a cost metric) the paper optimizes;
* **segment-preserving** variation operators: one-point crossover splices
  the parents' cut lists at a layer boundary and mutation nudges a single
  cut (:meth:`~repro.dse.space.CustomDesignSpace.mutate`), so children
  share almost every segment with their parents and evaluate through the
  warm :class:`~repro.runtime.segcache.SegmentCostCache`;
* an :class:`EvolutionEngine` whose entire state is three checkpointable
  values (generation number, scored population, ``random.Random`` state),
  which is what makes kill/resume bit-identical.

Everything here is deterministic for a seeded ``random.Random``: ties in
ranking break by list position, and the engine consumes randomness in a
fixed order that does not depend on evaluation timing or parallelism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.pareto import crowding_distance_vectors
from repro.core.cost.results import CostReport
from repro.dse.space import CustomDesign, CustomDesignSpace
from repro.utils.errors import ResourceError

#: A scored individual: the design point and its feasible cost report.
ScoredDesign = Tuple[CustomDesign, CostReport]

#: Objective vector in minimization form.
ObjectiveVector = Tuple[float, ...]


def design_key(design: CustomDesign) -> Tuple[int, Tuple[int, ...]]:
    """Identity of a design point (used for archive/population dedup)."""
    return (design.pipelined_layers, design.cuts)


def objective_vector(report: CostReport, cost_metric: str) -> ObjectiveVector:
    """The paper's bi-objective in minimization form.

    Throughput is negated so both components minimize; ``cost_metric`` is
    ``"buffers"`` or ``"access"`` as everywhere else in the DSE layer.
    """
    return (-report.throughput_fps, report.metric(cost_metric))


def _dominates(a: ObjectiveVector, b: ObjectiveVector) -> bool:
    """Pareto dominance for minimization vectors (<= all, < at least one)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def non_dominated_sort(vectors: Sequence[ObjectiveVector]) -> List[List[int]]:
    """Fast non-dominated sort: indices grouped into fronts, best first.

    Front 0 is the Pareto set of ``vectors``; each later front is the
    Pareto set of what remains. Within a front, indices keep input order,
    which is what makes downstream selection deterministic.
    """
    n = len(vectors)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if _dominates(vectors[i], vectors[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif _dominates(vectors[j], vectors[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        following: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    following.append(j)
        current = sorted(following)
    return fronts


def crowding_distances(
    vectors: Sequence[ObjectiveVector], front: Sequence[int]
) -> Dict[int, float]:
    """NSGA-II crowding distance of each index in one front.

    A keyed view over the shared
    :func:`~repro.analysis.pareto.crowding_distance_vectors`; ``front``
    indices arrive in ascending order (how :func:`non_dominated_sort`
    emits them), so positional and global tie-breaks agree.
    """
    subset = [vectors[i] for i in front]
    return dict(zip(front, crowding_distance_vectors(subset)))


@dataclass(frozen=True)
class EvolutionConfig:
    """Knobs of one evolutionary run (all serialized into campaign specs)."""

    population: int = 32
    generations: int = 10
    crossover_rate: float = 0.9
    mutation_rate: float = 0.9
    cost_metric: str = "buffers"

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError(f"population must be >= 2, got {self.population}")
        if self.generations < 0:
            raise ValueError(f"generations must be >= 0, got {self.generations}")
        for name in ("crossover_rate", "mutation_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {rate}")


def crossover(
    space: CustomDesignSpace,
    first: CustomDesign,
    second: CustomDesign,
    rng: random.Random,
) -> CustomDesign:
    """Segment-preserving one-point crossover.

    The child keeps one parent's pipelined head and every cut of that
    parent below a random layer boundary, plus the other parent's cuts at
    or above it. Each contiguous run of inherited cuts reproduces the
    donor parent's segments exactly, so the child's evaluation is mostly
    segment-cache hits. Falls back to the first parent when no valid child
    emerges.
    """
    for _ in range(32):
        a, b = (first, second) if rng.random() < 0.5 else (second, first)
        point = rng.randrange(1, space.num_layers)
        head = a.pipelined_layers
        cuts = sorted(
            {cut for cut in a.cuts if cut < point}
            | {cut for cut in b.cuts if cut >= point}
        )
        cuts = tuple(cut for cut in cuts if cut > head)
        try:
            child = CustomDesign(
                pipelined_layers=head, cuts=cuts, num_layers=a.num_layers
            )
        except ResourceError:
            continue
        if not (space.ce_counts[0] <= child.ce_count <= space.ce_counts[-1]):
            # Merging two cut sets can land outside the space's CE-count
            # bounds; such a child could never have been sampled, so retry.
            continue
        return child
    return first


class EvolutionEngine:
    """One cell's NSGA-II loop, stepped a generation at a time.

    The engine never owns the evaluator: ``evaluate`` is any batch
    function mapping designs to ``Optional[CostReport]`` in request order
    (the campaign passes the shared
    :class:`~repro.dse.sampler.DesignEvaluator`, so fingerprint/segment
    caches persist across generations). Each generation is submitted as
    **one** batched call, which lets the runtime score it through the
    vectorized population kernel (:mod:`repro.core.cost.vector`) — a
    default-sized generation clears the kernel's auto threshold, and
    reports are bit-identical to per-design evaluation regardless.
    Checkpointable state is exactly
    ``(generation, population, rng state)`` — restore those three and the
    remaining generations replay bit-identically.
    """

    def __init__(
        self,
        space: CustomDesignSpace,
        config: EvolutionConfig,
        evaluate: Callable[[List[CustomDesign]], List[Optional[CostReport]]],
        rng: random.Random,
    ) -> None:
        self.space = space
        self.config = config
        self._evaluate = evaluate
        self.rng = rng
        self.generation = 0
        self.population: List[ScoredDesign] = []
        #: Designs submitted to the evaluator by the latest round (feasible
        #: or not) — what campaign accounting charges the round with.
        self.last_submitted = 0

    # --- state -----------------------------------------------------------
    def restore(self, population: Sequence[ScoredDesign], generation: int) -> None:
        """Adopt checkpointed state (the rng is restored by the caller)."""
        self.population = list(population)
        self.generation = generation

    # --- lifecycle -------------------------------------------------------
    def initialize(self, seed: int) -> List[ScoredDesign]:
        """Evaluate the seeded initial sample; returns the feasible pairs.

        Sampling uses its own ``random.Random(seed)`` (inside
        :meth:`~repro.dse.space.CustomDesignSpace.sample`), so the initial
        population is the same whether or not the engine's evolution rng
        has been consumed — and matches ``random_search`` on the same seed.
        """
        designs = list(self.space.sample(self.config.population, seed=seed))
        scored = self._score(designs)
        self.population = self._truncate(scored, self.config.population)
        self.generation = 0
        return scored

    def step(self) -> List[ScoredDesign]:
        """Breed, evaluate, and select one generation.

        Returns the feasible offspring of this generation (for archive
        updates); ``population`` holds the survivors afterwards.
        """
        offspring_designs = self._breed()
        offspring = self._score(offspring_designs)
        pool = self.population + offspring
        self.population = self._truncate(pool, self.config.population)
        self.generation += 1
        return offspring

    # --- internals -------------------------------------------------------
    def _score(self, designs: List[CustomDesign]) -> List[ScoredDesign]:
        self.last_submitted = len(designs)
        reports = self._evaluate(designs)
        return [
            (design, report)
            for design, report in zip(designs, reports)
            if report is not None
        ]

    def _vectors(self, scored: Sequence[ScoredDesign]) -> List[ObjectiveVector]:
        return [
            objective_vector(report, self.config.cost_metric)
            for _design, report in scored
        ]

    def _breed(self) -> List[CustomDesign]:
        """The next generation's candidate designs (randomness in fixed order)."""
        if not self.population:
            # Everything so far was infeasible: fall back to fresh random
            # draws from the evolution rng (still deterministic).
            return [
                self.space.random_design(self.rng)
                for _ in range(self.config.population)
            ]
        vectors = self._vectors(self.population)
        fronts = non_dominated_sort(vectors)
        rank = {index: depth for depth, front in enumerate(fronts) for index in front}
        crowding: Dict[int, float] = {}
        for front in fronts:
            crowding.update(crowding_distances(vectors, front))

        def tournament() -> CustomDesign:
            i = self.rng.randrange(len(self.population))
            j = self.rng.randrange(len(self.population))
            # Lower rank wins; ties go to the less crowded, then the
            # earlier index — fully deterministic.
            winner = min(i, j, key=lambda k: (rank[k], -crowding[k], k))
            return self.population[winner][0]

        # Variation must respect the declared space: a cell restricted to
        # ce_counts [2, 3] must never evaluate (let alone archive) a 4-CE
        # design, and mutate can otherwise drift one step outside the set.
        allowed_ce = set(self.space.ce_counts)
        children: List[CustomDesign] = []
        for _ in range(self.config.population):
            parent = child = tournament()
            for _attempt in range(16):
                candidate = child if _attempt == 0 else tournament()
                if self.rng.random() < self.config.crossover_rate:
                    candidate = crossover(
                        self.space, candidate, tournament(), self.rng
                    )
                if self.rng.random() < self.config.mutation_rate:
                    candidate = self.space.mutate(candidate, self.rng)
                if candidate.ce_count in allowed_ce:
                    child = candidate
                    break
            else:
                child = parent  # in-space by induction from the seeded sample
            children.append(child)
        return children

    def _truncate(self, pool: List[ScoredDesign], size: int) -> List[ScoredDesign]:
        """NSGA-II environmental selection: fill by front, cut by crowding."""
        if len(pool) <= size:
            return list(pool)
        vectors = self._vectors(pool)
        survivors: List[int] = []
        for front in non_dominated_sort(vectors):
            if len(survivors) + len(front) <= size:
                survivors.extend(front)
                continue
            crowding = crowding_distances(vectors, front)
            remaining = sorted(front, key=lambda i: (-crowding[i], i))
            survivors.extend(remaining[: size - len(survivors)])
            break
        return [pool[i] for i in survivors]
