"""Design-space sampling and evaluation (the Fig. 10 experiment driver).

Couples a :class:`~repro.dse.space.CustomDesignSpace` with a builder and
the MCCM model; evaluation results are cached by design key so local search
revisiting a neighbourhood pays nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cnn.graph import CNNGraph
from repro.core.builder import MultipleCEBuilder
from repro.core.cost.model import default_model
from repro.core.cost.results import CostReport
from repro.dse.space import CustomDesign, CustomDesignSpace
from repro.hw.boards import FPGABoard
from repro.hw.datatypes import DEFAULT_PRECISION, Precision
from repro.utils.errors import MCCMError


@dataclass
class SampleStats:
    """Aggregate statistics of one sampling run (the §V-E timing claims)."""

    evaluated: int
    failed: int
    elapsed_seconds: float

    @property
    def ms_per_design(self) -> float:
        if self.evaluated == 0:
            return 0.0
        return 1000.0 * self.elapsed_seconds / self.evaluated


class DesignEvaluator:
    """Builds and costs custom designs with memoization."""

    def __init__(
        self,
        graph: CNNGraph,
        board: FPGABoard,
        precision: Precision = DEFAULT_PRECISION,
    ) -> None:
        self._builder = MultipleCEBuilder(graph, board, precision)
        self._model = default_model()
        self._cache: Dict[Tuple[int, Tuple[int, ...]], Optional[CostReport]] = {}

    @property
    def builder(self) -> MultipleCEBuilder:
        return self._builder

    def evaluate(self, design: CustomDesign) -> Optional[CostReport]:
        """Cost one design; ``None`` when the design is infeasible."""
        key = (design.pipelined_layers, design.cuts)
        if key in self._cache:
            return self._cache[key]
        try:
            accelerator = self._builder.build(design.to_spec())
            report = self._model.evaluate(accelerator)
        except MCCMError:
            report = None
        self._cache[key] = report
        return report


def sample_space(
    evaluator: DesignEvaluator,
    space: CustomDesignSpace,
    count: int,
    seed: int = 0,
) -> Tuple[List[Tuple[CustomDesign, CostReport]], SampleStats]:
    """Evaluate a random sample of the space; returns results and stats."""
    results: List[Tuple[CustomDesign, CostReport]] = []
    failed = 0
    start = time.perf_counter()
    for design in space.sample(count, seed=seed):
        report = evaluator.evaluate(design)
        if report is None:
            failed += 1
            continue
        results.append((design, report))
    elapsed = time.perf_counter() - start
    return results, SampleStats(
        evaluated=len(results), failed=failed, elapsed_seconds=elapsed
    )
