"""Design-space sampling and evaluation (the Fig. 10 experiment driver).

Couples a :class:`~repro.dse.space.CustomDesignSpace` with the
:class:`~repro.runtime.BatchEvaluator` runtime: evaluations are
fingerprint-memoized (so local search revisiting a neighbourhood pays
nothing), *segment*-memoized (custom designs are partitions of one layer
list, so two designs differing in one cut share nearly all per-segment
build and cost work — see :mod:`repro.runtime.segcache`), optionally
persisted to disk, and — when the runtime decides to fork — fanned out
over a worker pool without changing which designs get sampled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.cnn.graph import CNNGraph
from repro.core.builder import MultipleCEBuilder
from repro.core.cost.results import CostReport
from repro.dse.space import CustomDesign, CustomDesignSpace
from repro.hw.boards import FPGABoard
from repro.hw.datatypes import DEFAULT_PRECISION, Precision
from repro.runtime import BatchEvaluator, ProgressCallback


@dataclass
class SampleStats:
    """Aggregate statistics of one sampling run (the §V-E timing claims)."""

    evaluated: int
    failed: int
    elapsed_seconds: float
    #: Designs answered from the runtime cache rather than re-evaluated.
    cache_hits: int = 0
    #: Worker processes used (1 = the serial path).
    jobs: int = 1

    @property
    def ms_per_design(self) -> float:
        if self.evaluated == 0:
            return 0.0
        return 1000.0 * self.elapsed_seconds / self.evaluated

    def to_dict(self) -> dict:
        """JSON-ready counters (the CLI's ``--json`` and the HTTP service)."""
        return {
            "evaluated": self.evaluated,
            "failed": self.failed,
            "elapsed_seconds": self.elapsed_seconds,
            "ms_per_design": self.ms_per_design,
            "cache_hits": self.cache_hits,
            "jobs": self.jobs,
        }


class DesignEvaluator:
    """Builds and costs custom designs through the cached runtime.

    A thin DSE-facing veneer over :class:`~repro.runtime.BatchEvaluator`:
    it lowers :class:`CustomDesign` points to architecture specs and keeps
    the historical one-design-at-a-time interface alongside the batched
    one the searchers now use.
    """

    def __init__(
        self,
        graph: CNNGraph,
        board: FPGABoard,
        precision: Precision = DEFAULT_PRECISION,
        *,
        jobs: Union[int, str] = "auto",
        cache_dir: Optional[Union[str, Path]] = None,
        segment_cache_entries: Optional[int] = None,
        population_kernel: Union[bool, str] = "auto",
        tensor_backend: Optional[str] = None,
        runtime: Optional[BatchEvaluator] = None,
    ) -> None:
        self._runtime = runtime or BatchEvaluator(
            graph,
            board,
            precision,
            jobs=jobs,
            cache_dir=cache_dir,
            segment_cache_entries=segment_cache_entries,
            population_kernel=population_kernel,
            tensor_backend=tensor_backend,
        )

    @property
    def builder(self) -> MultipleCEBuilder:
        return self._runtime.builder

    @property
    def runtime(self) -> BatchEvaluator:
        return self._runtime

    def evaluate(self, design: CustomDesign) -> Optional[CostReport]:
        """Cost one design; ``None`` when the design is infeasible."""
        return self._runtime.evaluate_spec(design.to_spec())

    def evaluate_batch(
        self,
        designs: List[CustomDesign],
        progress: Optional[ProgressCallback] = None,
    ) -> List[Optional[CostReport]]:
        """Cost many designs at once.

        Every searcher generation lands here in one call, so the runtime
        can route it through the batched population kernel (inline
        batches of ``POPULATION_MIN_BATCH``+ misses) or the worker pool;
        reports are identical either way.
        """
        return self._runtime.evaluate_designs(designs, progress=progress)

    def evaluate_population(
        self,
        designs: List[CustomDesign],
        progress: Optional[ProgressCallback] = None,
    ) -> List[Optional[CostReport]]:
        """Cost a population, forcing the batched kernel (no threshold)."""
        return [
            item.report
            for item in self._runtime.evaluate_population(
                [design.to_spec() for design in designs], progress=progress
            )
        ]

    def close(self) -> None:
        self._runtime.close()

    def __enter__(self) -> "DesignEvaluator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def sample_space(
    evaluator: DesignEvaluator,
    space: CustomDesignSpace,
    count: int,
    seed: int = 0,
    progress: Optional[ProgressCallback] = None,
) -> Tuple[List[Tuple[CustomDesign, CostReport]], SampleStats]:
    """Evaluate a random sample of the space; returns results and stats.

    The sample itself is drawn up front from the seeded space generator, so
    the set of designs — and therefore the results — is independent of the
    evaluator's parallelism.
    """
    designs = list(space.sample(count, seed=seed))
    start = time.perf_counter()
    reports = evaluator.evaluate_batch(designs, progress=progress)
    elapsed = time.perf_counter() - start
    results: List[Tuple[CustomDesign, CostReport]] = [
        (design, report)
        for design, report in zip(designs, reports)
        if report is not None
    ]
    run = evaluator.runtime.last_run
    return results, SampleStats(
        evaluated=len(results),
        failed=len(designs) - len(results),
        elapsed_seconds=elapsed,
        cache_hits=run.cache_hits,
        jobs=run.jobs,
    )
