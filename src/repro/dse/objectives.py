"""DSE objectives: scalarization and constraint checks.

Use case 3 optimizes a bi-objective: "identify the architecture of a
multiple-CE accelerator that maximizes throughput while minimizing on-chip
memory usage". The scalarized form normalizes both terms against a
reference design so weights are unitless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.cost.results import CostReport


@dataclass(frozen=True)
class Objective:
    """Weighted throughput-vs-cost scalarization (higher score is better)."""

    cost_metric: str = "buffers"
    throughput_weight: float = 1.0
    cost_weight: float = 1.0
    reference_throughput: float = 1.0
    reference_cost: float = 1.0

    def score(self, report: CostReport) -> float:
        throughput_term = report.throughput_fps / max(self.reference_throughput, 1e-12)
        cost_term = report.metric(self.cost_metric) / max(self.reference_cost, 1e-12)
        return self.throughput_weight * throughput_term - self.cost_weight * cost_term

    @classmethod
    def relative_to(
        cls,
        reference: CostReport,
        cost_metric: str = "buffers",
        throughput_weight: float = 1.0,
        cost_weight: float = 1.0,
    ) -> "Objective":
        """Objective normalized to a baseline report (e.g. the best
        state-of-the-art instance the DSE tries to beat)."""
        return cls(
            cost_metric=cost_metric,
            throughput_weight=throughput_weight,
            cost_weight=cost_weight,
            reference_throughput=max(reference.throughput_fps, 1e-12),
            reference_cost=max(reference.metric(cost_metric), 1e-12),
        )


def throughput_at_most_cost(limit: float, cost_metric: str = "buffers") -> Callable[[CostReport], bool]:
    """Constraint: keep designs whose cost metric is at most ``limit``."""

    def predicate(report: CostReport) -> bool:
        return report.metric(cost_metric) <= limit

    return predicate


def matches_throughput(
    floor_fps: float, slack: float = 0.0
) -> Callable[[CostReport], bool]:
    """Constraint: throughput at least ``floor_fps * (1 - slack)``.

    Used for the paper's headline DSE claim: customs that *match* the best
    Segmented throughput while cutting buffers.
    """

    def predicate(report: CostReport) -> bool:
        return report.throughput_fps >= floor_fps * (1.0 - slack)

    return predicate
