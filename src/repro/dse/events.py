"""Typed campaign telemetry events and the append-only NDJSON event log.

A running :class:`~repro.dse.campaign.Campaign` narrates itself as a
stream of flat, JSON-stable **events** — ``campaign_start``,
``generation_start``, ``generation_done`` (front size, 2-D hypervolume,
best-per-objective, cache hit rates), ``cell_done``, ``campaign_done``
and ``error`` — so long searches stop being a poll-only black box.
Three consumers share one wire format (one canonical JSON object per
line, monotonically increasing ``seq``):

* the **event log**, an append-only ``<checkpoint>.events`` NDJSON file
  persisted next to the checkpoint (each line is flushed+fsynced before
  the round's checkpoint lands, so a SIGKILL loses at most the round in
  flight and never a committed line);
* the **service stream**, ``GET /campaign/<id>/events`` chunked NDJSON
  (:mod:`repro.service`), which tails either an in-memory buffer or the
  fleet's shared-run-dir mirror of this log;
* the **CLI renderer**, ``repro campaign watch``.

Resume safety is a prefix property: on :meth:`EventLog.reconcile` the
longest prefix of events the checkpoint proves *committed* is kept
byte-for-byte (original line bytes are reused, never re-serialized) and
the uncommitted suffix — at most the interrupted round, plus a possibly
torn final line — is truncated; the replayed round then re-emits those
events with fresh ``seq`` numbers. History therefore replays
byte-stable with no duplicate and no missing generation numbers, the
event-stream analogue of the checkpoint's bit-identical-front
guarantee.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from repro.utils.errors import MCCMError

#: Every event type the campaign runner emits, in rough lifecycle order.
EVENT_TYPES = (
    "campaign_start",
    "generation_start",
    "generation_done",
    "cell_done",
    "campaign_done",
    "error",
)

#: Event types after which a stream has nothing more to say.
TERMINAL_EVENT_TYPES = ("campaign_done", "error")

#: Keys reserved for the envelope; payload fields may not collide.
_ENVELOPE_KEYS = ("seq", "ts", "type", "cell")


class EventLogError(MCCMError):
    """An unreadable or unwritable campaign event log."""


@dataclass(frozen=True)
class CampaignEvent:
    """One telemetry event: a typed envelope plus a flat JSON payload.

    The wire form is a single flat object — ``{"seq": 3, "ts": ...,
    "type": "generation_done", "cell": 0, "generation": 2, ...}`` —
    serialized canonically (sorted keys, compact separators) so identical
    events are identical bytes everywhere they appear.
    """

    seq: int
    ts: float
    type: str
    cell: Optional[int] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload = {"seq": self.seq, "ts": self.ts, "type": self.type, "cell": self.cell}
        payload.update(self.data)
        return payload

    def to_line(self) -> bytes:
        """The canonical NDJSON wire form (one line, newline-terminated)."""
        return (
            json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
            + b"\n"
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignEvent":
        seq, ts, etype = data.get("seq"), data.get("ts"), data.get("type")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
            raise ValueError(f"event needs an integer seq >= 1, got {seq!r}")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            raise ValueError(f"event needs a numeric ts, got {ts!r}")
        if etype not in EVENT_TYPES:
            raise ValueError(f"unknown event type {etype!r}")
        cell = data.get("cell")
        if cell is not None and (not isinstance(cell, int) or isinstance(cell, bool)):
            raise ValueError(f"event cell must be an integer or null, got {cell!r}")
        payload = {key: value for key, value in data.items() if key not in _ENVELOPE_KEYS}
        return cls(seq=seq, ts=float(ts), type=etype, cell=cell, data=payload)

    @classmethod
    def parse_line(cls, line: bytes) -> "CampaignEvent":
        data = json.loads(line.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("event line is not a JSON object")
        return cls.from_dict(data)


def _complete_lines(path: Path) -> List[Tuple[bytes, Optional[CampaignEvent]]]:
    """Raw newline-terminated lines of ``path`` with their parsed events.

    A missing trailing newline marks a line torn by a kill mid-append; the
    torn tail is dropped (never an error). A line that fails to parse maps
    to ``(raw, None)`` so callers can stop — and truncate — right there.
    """
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return []
    except OSError as error:
        raise EventLogError(f"cannot read event log {path}: {error}") from None
    lines: List[Tuple[bytes, Optional[CampaignEvent]]] = []
    # Bytes past the last newline are a tail torn by a kill mid-append;
    # they are not a complete line and are silently ignored.
    end = raw.rfind(b"\n") + 1
    offset = 0
    while offset < end:
        newline = raw.index(b"\n", offset)
        line = raw[offset : newline + 1]
        offset = newline + 1
        stripped = line.strip()
        if not stripped:
            continue
        try:
            event: Optional[CampaignEvent] = CampaignEvent.parse_line(stripped)
        except (ValueError, UnicodeDecodeError):
            event = None
        lines.append((line, event))
        if event is None:
            break
    return lines


def read_events(
    path: Union[str, Path], after: int = 0
) -> List[CampaignEvent]:
    """Replay an event log: every well-formed event with ``seq > after``.

    Tolerant by design — a torn final line (kill mid-append) or a corrupt
    suffix ends the replay quietly; everything before it is returned. This
    is the read used by stream serving, ``campaign watch --log``, and the
    resume reconcile.
    """
    events: List[CampaignEvent] = []
    expected = 0
    for _raw, event in _complete_lines(Path(path)):
        if event is None or event.seq != expected + 1:
            break
        expected = event.seq
        if event.seq > after:
            events.append(event)
    return events


class EventLog:
    """Append-only NDJSON event persistence with crash-safe appends.

    Appends are flush+fsync so a committed line survives SIGKILL; the
    only loss mode is a torn *final* line, which every reader tolerates.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[Any] = None
        self._lock = threading.Lock()

    def append(self, event: CampaignEvent) -> None:
        with self._lock:
            try:
                if self._handle is None:
                    self._handle = open(self.path, "ab")
                self._handle.write(event.to_line())
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError as error:
                raise EventLogError(
                    f"cannot append to event log {self.path}: {error}"
                ) from None

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                finally:
                    self._handle = None

    def truncate(self) -> None:
        """Reset to empty (a fresh campaign over a stale log file)."""
        self.close()
        try:
            with open(self.path, "wb"):
                pass
        except OSError as error:
            raise EventLogError(
                f"cannot truncate event log {self.path}: {error}"
            ) from None

    def reconcile(
        self, committed: Callable[[CampaignEvent], bool]
    ) -> List[CampaignEvent]:
        """Keep the longest committed prefix, drop the rest, byte-stable.

        Walks the log in order and keeps events while they parse, carry
        contiguous ``seq`` numbers, and satisfy ``committed`` (a predicate
        derived from the checkpoint). The kept prefix is preserved as its
        *original bytes* — never re-serialized — so replayed history is
        byte-identical; the uncommitted suffix (the interrupted round, a
        torn tail) is atomically truncated away and will be re-emitted by
        the resumed run. Returns the kept events.
        """
        self.close()
        lines = _complete_lines(self.path)
        kept_raw: List[bytes] = []
        kept: List[CampaignEvent] = []
        for raw, event in lines:
            if event is None or event.seq != len(kept) + 1 or not committed(event):
                break
            kept_raw.append(raw)
            kept.append(event)
        prefix = b"".join(kept_raw)
        try:
            size = os.stat(self.path).st_size
        except FileNotFoundError:
            size = 0
        except OSError as error:
            raise EventLogError(f"cannot stat event log {self.path}: {error}") from None
        if size != len(prefix):
            tmp = self.path.with_name(self.path.name + ".tmp")
            try:
                with open(tmp, "wb") as handle:
                    handle.write(prefix)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self.path)
            except OSError as error:
                raise EventLogError(
                    f"cannot reconcile event log {self.path}: {error}"
                ) from None
        return kept


class CampaignEventBus:
    """Assigns ``seq`` numbers and fans events out to a log and sinks.

    The campaign runner owns one bus per campaign. ``emit`` appends to the
    attached :class:`EventLog` (if any) *before* notifying subscriber
    sinks, so persistence is never behind what consumers saw. Sink errors
    are swallowed — telemetry consumers must not be able to kill a search.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._log: Optional[EventLog] = None
        self._sinks: List[Callable[[CampaignEvent], None]] = []
        self._last_seq = 0
        self._seen_types: Set[str] = set()

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._last_seq

    @property
    def seen_types(self) -> Set[str]:
        with self._lock:
            return set(self._seen_types)

    def attach_log(self, log: EventLog) -> None:
        with self._lock:
            self._log = log

    def subscribe(self, sink: Callable[[CampaignEvent], None]) -> None:
        with self._lock:
            self._sinks.append(sink)

    def prime(self, events: Iterable[CampaignEvent]) -> None:
        """Adopt replayed history (resume): continue ``seq`` after it and
        remember which lifecycle events already happened, then offer the
        history to every sink so live consumers see the full stream."""
        events = list(events)
        with self._lock:
            for event in events:
                self._last_seq = max(self._last_seq, event.seq)
                self._seen_types.add(event.type)
            sinks = list(self._sinks)
        for event in events:
            for sink in sinks:
                try:
                    sink(event)
                except Exception:  # pragma: no cover - defensive
                    pass

    def emit(
        self, etype: str, cell: Optional[int] = None, **data: Any
    ) -> CampaignEvent:
        if etype not in EVENT_TYPES:
            raise ValueError(f"unknown event type {etype!r}")
        with self._lock:
            self._last_seq += 1
            self._seen_types.add(etype)
            event = CampaignEvent(
                seq=self._last_seq, ts=round(time.time(), 3), type=etype, cell=cell, data=data
            )
            log, sinks = self._log, list(self._sinks)
        if log is not None:
            log.append(event)
        for sink in sinks:
            try:
                sink(event)
            except Exception:  # pragma: no cover - defensive
                pass
        return event

    def close(self) -> None:
        with self._lock:
            log, self._log = self._log, None
        if log is not None:
            log.close()
