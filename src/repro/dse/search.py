"""Design-space search strategies on top of sampling.

The paper's Use case 3 evaluates a random sample and reads improvements off
the Pareto front; this module adds a local-search refinement (hill climbing
from the sampled front) since MCCM evaluations are cheap enough to spend on
neighbourhoods of promising designs.

All strategies evaluate through one shared :class:`DesignEvaluator`, so
the runtime's caches compound across phases: ``guided_search``'s local
refinements hit the segment cache warmed by its random-sampling phase
(a mutated neighbour shares all but one segment with its parent), and
revisited designs answer from the fingerprint cache outright.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Protocol, Sequence, Tuple

from repro.analysis.pareto import pareto_front
from repro.core.cost.results import CostReport
from repro.dse.evolve import EvolutionConfig, EvolutionEngine
from repro.dse.objectives import Objective
from repro.dse.sampler import DesignEvaluator, SampleStats, sample_space
from repro.dse.space import CustomDesign, CustomDesignSpace


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one DSE run."""

    evaluated: Sequence[Tuple[CustomDesign, CostReport]]
    front: Sequence[Tuple[CustomDesign, CostReport]]
    stats: SampleStats
    cost_metric: str = "buffers"

    def best_by(self, objective: Objective) -> Tuple[CustomDesign, CostReport]:
        if not self.evaluated:
            raise ValueError("search produced no feasible designs")
        return max(self.evaluated, key=lambda pair: objective.score(pair[1]))

    def to_dict(self, include_evaluated: bool = False) -> dict:
        """JSON-ready dump: the Pareto front (and optionally every design).

        Front entries pair the design's coordinates with the lossless
        :func:`~repro.core.cost.export.report_to_dict` report form, so each
        report round-trips back to a :class:`CostReport`.
        """
        from repro.core.cost.export import report_to_dict

        def pair_to_dict(pair: Tuple[CustomDesign, CostReport]) -> dict:
            design, report = pair
            return {
                "design": {
                    "pipelined_layers": design.pipelined_layers,
                    "cuts": list(design.cuts),
                    "ce_count": design.ce_count,
                },
                "report": report_to_dict(report),
            }

        payload = {
            "cost_metric": self.cost_metric,
            "stats": self.stats.to_dict(),
            "front": [pair_to_dict(pair) for pair in self.front],
        }
        if include_evaluated:
            payload["evaluated"] = [pair_to_dict(pair) for pair in self.evaluated]
        return payload


def _front(
    pairs: Sequence[Tuple[CustomDesign, CostReport]], cost_metric: str
) -> List[Tuple[CustomDesign, CostReport]]:
    return pareto_front(
        list(pairs),
        benefit=lambda pair: pair[1].throughput_fps,
        cost=lambda pair: pair[1].metric(cost_metric),
    )


def random_search(
    evaluator: DesignEvaluator,
    space: CustomDesignSpace,
    samples: int,
    seed: int = 0,
    cost_metric: str = "buffers",
) -> SearchResult:
    """The Fig. 10 experiment: evaluate a random sample, keep the front."""
    evaluated, stats = sample_space(evaluator, space, samples, seed=seed)
    return SearchResult(
        evaluated=evaluated,
        front=_front(evaluated, cost_metric),
        stats=stats,
        cost_metric=cost_metric,
    )


#: ``local_search`` defaults, named so budget estimates (campaign specs,
#: the service cap) stay in sync with the walk they bound.
LOCAL_SEARCH_ITERATIONS = 50
LOCAL_SEARCH_NEIGHBOURS = 8


def local_search(
    evaluator: DesignEvaluator,
    space: CustomDesignSpace,
    start: CustomDesign,
    objective: Objective,
    iterations: int = LOCAL_SEARCH_ITERATIONS,
    neighbours: int = LOCAL_SEARCH_NEIGHBOURS,
    seed: int = 0,
) -> Tuple[CustomDesign, Optional[CostReport]]:
    """Hill climbing from ``start`` under a scalarized objective.

    Each iteration evaluates a handful of mutated neighbours and moves to
    the best strict improvement; stops at a local optimum.
    """
    rng = random.Random(seed)
    current = start
    current_report = evaluator.evaluate(current)
    current_score = objective.score(current_report) if current_report else float("-inf")
    for _ in range(iterations):
        # Draw the whole neighbourhood first: mutation only consumes the
        # seeded rng, so the candidate set is identical whether the batch
        # below is evaluated serially or on a worker pool — and the
        # first-best tie-break over the ordered batch keeps the walk
        # deterministic for any jobs count.
        candidates = [space.mutate(current, rng) for _ in range(neighbours)]
        reports = evaluator.evaluate_batch(candidates)
        best_candidate = None
        best_report = None
        best_score = current_score
        for candidate, report in zip(candidates, reports):
            if report is None:
                continue
            score = objective.score(report)
            if score > best_score:
                best_candidate, best_report, best_score = candidate, report, score
        if best_candidate is None:
            break
        current, current_report, current_score = best_candidate, best_report, best_score
    return current, current_report


def guided_search(
    evaluator: DesignEvaluator,
    space: CustomDesignSpace,
    samples: int,
    objective: Objective,
    refine_top: int = 5,
    seed: int = 0,
) -> SearchResult:
    """Random sample followed by local refinement of the sampled front."""
    base = random_search(evaluator, space, samples, seed=seed, cost_metric=objective.cost_metric)
    refined: List[Tuple[CustomDesign, CostReport]] = list(base.evaluated)
    for index, (design, _report) in enumerate(list(base.front)[:refine_top]):
        improved, report = local_search(
            evaluator, space, design, objective, seed=seed + index + 1
        )
        if report is not None:
            refined.append((improved, report))
    return SearchResult(
        evaluated=refined,
        front=_front(refined, objective.cost_metric),
        stats=base.stats,
        cost_metric=objective.cost_metric,
    )


# --- the strategy protocol ---------------------------------------------------
# The campaign engine (and the CLI's ``dse --strategy``) treat every search
# as one interchangeable object; ``guided_search`` & friends above remain the
# plain-function surface, and these adapters make each one a Strategy.


class Strategy(Protocol):
    """What a pluggable search strategy provides.

    A strategy owns its tuning (sample counts, rates) but not the
    evaluation context: ``search`` receives the shared evaluator and
    space, and must be deterministic for a given ``seed`` regardless of
    the evaluator's parallelism.
    """

    name: ClassVar[str]

    @property
    def cost_metric(self) -> str: ...

    def search(
        self, evaluator: DesignEvaluator, space: CustomDesignSpace, *, seed: int = 0
    ) -> SearchResult: ...


@dataclass(frozen=True)
class RandomStrategy:
    """The Fig. 10 baseline: evaluate a flat random sample."""

    name: ClassVar[str] = "random"
    samples: int = 500
    cost_metric: str = "buffers"

    def search(
        self, evaluator: DesignEvaluator, space: CustomDesignSpace, *, seed: int = 0
    ) -> SearchResult:
        return random_search(
            evaluator, space, self.samples, seed=seed, cost_metric=self.cost_metric
        )


@dataclass(frozen=True)
class GuidedStrategy:
    """Random sample plus hill-climbing refinement of the sampled front."""

    name: ClassVar[str] = "guided"
    samples: int = 500
    cost_metric: str = "buffers"
    refine_top: int = 5

    def search(
        self, evaluator: DesignEvaluator, space: CustomDesignSpace, *, seed: int = 0
    ) -> SearchResult:
        return guided_search(
            evaluator,
            space,
            self.samples,
            Objective(cost_metric=self.cost_metric),
            refine_top=self.refine_top,
            seed=seed,
        )


@dataclass(frozen=True)
class EvolutionStrategy:
    """NSGA-II evolution (:mod:`repro.dse.evolve`) run start to finish.

    The campaign engine steps the same :class:`EvolutionEngine` itself so
    it can checkpoint between generations; this adapter is the
    uninterrupted one-call form the CLI and one-off searches use.
    """

    name: ClassVar[str] = "evolve"
    config: EvolutionConfig = field(default_factory=EvolutionConfig)

    @property
    def cost_metric(self) -> str:
        return self.config.cost_metric

    def search(
        self, evaluator: DesignEvaluator, space: CustomDesignSpace, *, seed: int = 0
    ) -> SearchResult:
        engine = EvolutionEngine(
            space, self.config, evaluator.evaluate_batch, random.Random(seed)
        )
        hits_before = evaluator.runtime.totals.cache_hits
        start = time.perf_counter()
        evaluated: List[Tuple[CustomDesign, CostReport]] = list(engine.initialize(seed))
        submitted = engine.last_submitted
        for _ in range(self.config.generations):
            evaluated.extend(engine.step())
            submitted += engine.last_submitted
        elapsed = time.perf_counter() - start
        stats = SampleStats(
            evaluated=len(evaluated),
            failed=submitted - len(evaluated),
            elapsed_seconds=elapsed,
            cache_hits=evaluator.runtime.totals.cache_hits - hits_before,
            jobs=evaluator.runtime.last_run.jobs,
        )
        return SearchResult(
            evaluated=evaluated,
            front=_front(evaluated, self.cost_metric),
            stats=stats,
            cost_metric=self.cost_metric,
        )


#: Strategy names accepted by :func:`make_strategy` (and the CLI/campaign).
STRATEGY_NAMES = ("random", "guided", "evolve")


def make_strategy(
    name: str,
    *,
    samples: int = 500,
    cost_metric: str = "buffers",
    refine_top: int = 5,
    evolution: Optional[EvolutionConfig] = None,
) -> Strategy:
    """Build a :class:`Strategy` by name with the relevant knobs applied."""
    key = name.strip().lower()
    if key == "random":
        return RandomStrategy(samples=samples, cost_metric=cost_metric)
    if key == "guided":
        return GuidedStrategy(
            samples=samples, cost_metric=cost_metric, refine_top=refine_top
        )
    if key == "evolve":
        config = evolution or EvolutionConfig(cost_metric=cost_metric)
        return EvolutionStrategy(config=config)
    raise ValueError(f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}")
