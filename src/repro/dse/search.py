"""Design-space search strategies on top of sampling.

The paper's Use case 3 evaluates a random sample and reads improvements off
the Pareto front; this module adds a local-search refinement (hill climbing
from the sampled front) since MCCM evaluations are cheap enough to spend on
neighbourhoods of promising designs.

All strategies evaluate through one shared :class:`DesignEvaluator`, so
the runtime's caches compound across phases: ``guided_search``'s local
refinements hit the segment cache warmed by its random-sampling phase
(a mutated neighbour shares all but one segment with its parent), and
revisited designs answer from the fingerprint cache outright.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.pareto import pareto_front
from repro.core.cost.results import CostReport
from repro.dse.objectives import Objective
from repro.dse.sampler import DesignEvaluator, SampleStats, sample_space
from repro.dse.space import CustomDesign, CustomDesignSpace


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one DSE run."""

    evaluated: Sequence[Tuple[CustomDesign, CostReport]]
    front: Sequence[Tuple[CustomDesign, CostReport]]
    stats: SampleStats
    cost_metric: str = "buffers"

    def best_by(self, objective: Objective) -> Tuple[CustomDesign, CostReport]:
        if not self.evaluated:
            raise ValueError("search produced no feasible designs")
        return max(self.evaluated, key=lambda pair: objective.score(pair[1]))

    def to_dict(self, include_evaluated: bool = False) -> dict:
        """JSON-ready dump: the Pareto front (and optionally every design).

        Front entries pair the design's coordinates with the lossless
        :func:`~repro.core.cost.export.report_to_dict` report form, so each
        report round-trips back to a :class:`CostReport`.
        """
        from repro.core.cost.export import report_to_dict

        def pair_to_dict(pair: Tuple[CustomDesign, CostReport]) -> dict:
            design, report = pair
            return {
                "design": {
                    "pipelined_layers": design.pipelined_layers,
                    "cuts": list(design.cuts),
                    "ce_count": design.ce_count,
                },
                "report": report_to_dict(report),
            }

        payload = {
            "cost_metric": self.cost_metric,
            "stats": self.stats.to_dict(),
            "front": [pair_to_dict(pair) for pair in self.front],
        }
        if include_evaluated:
            payload["evaluated"] = [pair_to_dict(pair) for pair in self.evaluated]
        return payload


def _front(
    pairs: Sequence[Tuple[CustomDesign, CostReport]], cost_metric: str
) -> List[Tuple[CustomDesign, CostReport]]:
    return pareto_front(
        list(pairs),
        benefit=lambda pair: pair[1].throughput_fps,
        cost=lambda pair: pair[1].metric(cost_metric),
    )


def random_search(
    evaluator: DesignEvaluator,
    space: CustomDesignSpace,
    samples: int,
    seed: int = 0,
    cost_metric: str = "buffers",
) -> SearchResult:
    """The Fig. 10 experiment: evaluate a random sample, keep the front."""
    evaluated, stats = sample_space(evaluator, space, samples, seed=seed)
    return SearchResult(
        evaluated=evaluated,
        front=_front(evaluated, cost_metric),
        stats=stats,
        cost_metric=cost_metric,
    )


def local_search(
    evaluator: DesignEvaluator,
    space: CustomDesignSpace,
    start: CustomDesign,
    objective: Objective,
    iterations: int = 50,
    neighbours: int = 8,
    seed: int = 0,
) -> Tuple[CustomDesign, Optional[CostReport]]:
    """Hill climbing from ``start`` under a scalarized objective.

    Each iteration evaluates a handful of mutated neighbours and moves to
    the best strict improvement; stops at a local optimum.
    """
    rng = random.Random(seed)
    current = start
    current_report = evaluator.evaluate(current)
    current_score = objective.score(current_report) if current_report else float("-inf")
    for _ in range(iterations):
        # Draw the whole neighbourhood first: mutation only consumes the
        # seeded rng, so the candidate set is identical whether the batch
        # below is evaluated serially or on a worker pool — and the
        # first-best tie-break over the ordered batch keeps the walk
        # deterministic for any jobs count.
        candidates = [space.mutate(current, rng) for _ in range(neighbours)]
        reports = evaluator.evaluate_batch(candidates)
        best_candidate = None
        best_report = None
        best_score = current_score
        for candidate, report in zip(candidates, reports):
            if report is None:
                continue
            score = objective.score(report)
            if score > best_score:
                best_candidate, best_report, best_score = candidate, report, score
        if best_candidate is None:
            break
        current, current_report, current_score = best_candidate, best_report, best_score
    return current, current_report


def guided_search(
    evaluator: DesignEvaluator,
    space: CustomDesignSpace,
    samples: int,
    objective: Objective,
    refine_top: int = 5,
    seed: int = 0,
) -> SearchResult:
    """Random sample followed by local refinement of the sampled front."""
    base = random_search(evaluator, space, samples, seed=seed, cost_metric=objective.cost_metric)
    refined: List[Tuple[CustomDesign, CostReport]] = list(base.evaluated)
    for index, (design, _report) in enumerate(list(base.front)[:refine_top]):
        improved, report = local_search(
            evaluator, space, design, objective, seed=seed + index + 1
        )
        if report is not None:
            refined.append((improved, report))
    return SearchResult(
        evaluated=refined,
        front=_front(refined, objective.cost_metric),
        stats=base.stats,
        cost_metric=objective.cost_metric,
    )
