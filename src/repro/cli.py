"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's use cases:

* ``evaluate`` — one accelerator, all four metrics (optionally JSON).
* ``sweep`` — the paper's architecture x CE-count grid: table, CSV, or JSON.
* ``validate`` — model vs reference-simulator accuracy (Eq. 10).
* ``dse`` — search the custom design space (random / guided / evolve
  strategies) and print the Pareto front.
* ``campaign`` — ``run`` / ``resume`` / ``status`` / ``watch`` of
  checkpointed, resumable multi-objective DSE campaigns with live
  telemetry (``docs/dse.md``).
* ``serve`` — the concurrent HTTP evaluation service (``docs/api.md``);
  ``--workers N`` pre-forks a supervised multi-worker fleet sharing one
  port and disk cache.
* ``loadtest`` — open-loop Poisson load generator for the service:
  saturation curve, p50/p95/p99 latency, error taxonomy.
* ``bench`` — time the evaluation hot path: cold vs segment-cached vs
  fingerprint-cached (``docs/performance.md``).
* ``models`` / ``boards`` — ``list`` the registered CNNs and FPGAs or
  ``register`` user-defined JSON ones (persisted in the workload
  directory, ``$MCCM_WORKLOAD_DIR``); ``evaluate``/``sweep``/``dse``/
  ``validate`` also take one-shot ``--model-file``/``--board-file``.
* ``rules`` — ``list``/``register`` constraint rulesets (persisted in
  ``$MCCM_RULE_DIR``) or ``check`` a saved report JSON against one;
  ``evaluate --rules NAME`` attaches verdicts inline (``docs/rules.md``).

Bad inputs (unknown model/board names, malformed notation) exit with
status 2 and a one-line ``error:`` message instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.utils.errors import MCCMError

from repro import rules as rules_registry
from repro import workloads
from repro.analysis.pareto import report_front
from repro.analysis.reporting import comparison_table
from repro.api import build_accelerator, evaluate, resolve_board, resolve_model, sweep
from repro.cnn.stats import collect_stats, stats_table
from repro.core.cost.export import report_from_json, report_to_json, reports_to_csv
from repro.core.cost.model import default_model
from repro.dse import (
    CustomDesignSpace,
    DesignEvaluator,
    EvolutionConfig,
    STRATEGY_NAMES,
    make_strategy,
)
from repro.dse.campaign import (
    CampaignSpec,
    campaign_status,
    resume_campaign,
    run_campaign,
)
from repro.synth.simulator import SynthesisSimulator
from repro.synth.validate import ValidationRecord


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", help="registered model name (zoo or custom), e.g. resnet50"
    )
    parser.add_argument(
        "--model-file",
        metavar="FILE",
        help="model JSON file (cnn/serialize schema); registered for this "
        "run under the file's model name",
    )
    parser.add_argument(
        "--board", help="registered board name (paper or custom), e.g. zc706"
    )
    parser.add_argument(
        "--board-file",
        metavar="FILE",
        help="board JSON file (see docs/api.md); registered for this run "
        "under the file's board name",
    )


def _selected_workloads(args: argparse.Namespace) -> tuple:
    """Resolve ``--model/--model-file`` and ``--board/--board-file`` to names.

    File arguments are validated and registered (``replace=True`` — the
    file on the command line is the source of truth for its name), so the
    rest of the pipeline sees plain registry names either way.
    """
    if args.model_file:
        if args.model:
            raise MCCMError("pass --model or --model-file, not both")
        model = workloads.register_model(args.model_file, replace=True)
    elif args.model:
        model = args.model
    else:
        raise MCCMError("one of --model / --model-file is required")
    if args.board_file:
        if args.board:
            raise MCCMError("pass --board or --board-file, not both")
        board = workloads.register_board(args.board_file, replace=True)
    elif args.board:
        board = args.board
    else:
        raise MCCMError("one of --board / --board-file is required")
    return model, board


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _population_int(text: str) -> int:
    """``--population`` parser: NSGA-II needs at least two individuals."""
    value = int(text)
    if value < 2:
        raise argparse.ArgumentTypeError(f"must be >= 2, got {value}")
    return value


def _jobs_value(text: str):
    """``--jobs`` parser: a non-negative worker count or ``auto``."""
    if text.strip().lower() == "auto":
        return "auto"
    return _nonnegative_int(text)


def _add_runtime(parser: argparse.ArgumentParser, default_jobs=1) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=default_jobs,
        help=(
            "worker processes for evaluation (0 = one per CPU; 'auto' = fork "
            "only when the host and batch size make it a win; "
            f"default {default_jobs})"
        ),
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persistent evaluation-cache directory (reused across runs)",
    )


def _print_run_stats(stats) -> None:
    print(
        f"[runtime] {stats.evaluations} evaluated, {stats.cache_hits} cache hits "
        f"({100 * stats.hit_rate:.0f}%), {stats.elapsed_seconds:.2f}s "
        f"with {stats.jobs} job(s)",
        file=sys.stderr,
    )


def _print_verdicts(verdicts) -> None:
    for verdict in verdicts:
        status = "pass" if verdict.passed else verdict.severity.upper()
        print(f"[rules] {status:<5} {verdict.rule}: {verdict.message}", file=sys.stderr)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    model, board = _selected_workloads(args)
    report = evaluate(
        model, board, args.arch, ce_count=args.ces, rules=args.rules or None
    )
    if args.json:
        # With --rules the dump gains a "verdicts" section; without it the
        # bytes are identical to the historical report JSON.
        print(report_to_json(report))
    else:
        print(report.summary())
        print(f"notation: {report.notation}")
        _print_verdicts(report.verdicts)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    model, board = _selected_workloads(args)
    reports = sweep(
        model,
        board,
        architectures=args.arch or None,
        ce_counts=range(args.min_ces, args.max_ces + 1),
        jobs=args.jobs,
        cache_dir=args.cache,
    )
    if args.json:
        # Full dump — reports (lossless report_to_dict form), skipped
        # configurations with their reasons, and the runtime stats.
        print(json.dumps(reports.to_dict(), indent=2))
        return 0
    if args.csv:
        print(reports_to_csv(reports), end="")
    elif reports:
        print(comparison_table(reports))
    else:
        print("no feasible configurations in this sweep", file=sys.stderr)
    if reports.skipped:
        print(
            f"[runtime] skipped {len(reports.skipped)} infeasible configuration(s):",
            file=sys.stderr,
        )
        for skip in reports.skipped:
            print(
                f"[runtime]   {skip.architecture} x {skip.ce_count} CEs: {skip.reason}",
                file=sys.stderr,
            )
    _print_run_stats(reports.stats)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    model, board = _selected_workloads(args)
    accelerator = build_accelerator(model, board, args.arch, ce_count=args.ces)
    report = default_model().evaluate(accelerator)
    simulation = SynthesisSimulator(accelerator).run()
    record = ValidationRecord.from_results(
        args.arch, model, args.ces, report, simulation
    )
    for metric, accuracy in record.accuracies.items():
        print(f"{metric:<12} {accuracy:6.1f}%")
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.hw.datatypes import DEFAULT_PRECISION

    model_name, board_name = _selected_workloads(args)
    graph = resolve_model(model_name)
    # dse runs at the default precision; enforce a registered board's
    # supported_precisions restriction like every other command.
    board = resolve_board(board_name, precision=DEFAULT_PRECISION)
    space = CustomDesignSpace(graph.conv_specs())
    strategy = make_strategy(
        args.strategy,
        samples=args.samples,
        cost_metric=args.cost,
        evolution=EvolutionConfig(
            population=args.population,
            generations=args.generations,
            cost_metric=args.cost,
        )
        if args.strategy == "evolve"
        else None,
    )
    with DesignEvaluator(graph, board, jobs=args.jobs, cache_dir=args.cache) as evaluator:
        result = strategy.search(evaluator, space, seed=args.seed)
    if args.json:
        payload = result.to_dict()
        payload.update(
            {
                "model": model_name,
                "board": board_name,
                "strategy": args.strategy,
                "seed": args.seed,
                "space_size": space.size(),
            }
        )
        # Only the knobs that actually shaped this search's budget.
        if args.strategy == "evolve":
            payload["population"] = args.population
            payload["generations"] = args.generations
        else:
            payload["samples"] = args.samples
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"space {space.size():,} designs; evaluated {result.stats.evaluated} "
        f"at {result.stats.ms_per_design:.1f} ms/design "
        f"({result.stats.cache_hits} cache hits, {result.stats.jobs} job(s))"
    )
    # Evolution revisits designs across generations; collapse duplicates
    # before the front so each design prints once.
    unique = {}
    for _design, report in result.evaluated:
        unique.setdefault(report.notation, report)
    front = report_front(list(unique.values()), args.cost)
    for report in front:
        print(
            f"{report.accelerator_name:<22}{report.throughput_fps:>8.1f} FPS  "
            f"{report.metric(args.cost) / 2**20:>8.2f} MiB  {report.notation}"
        )
    return 0


def _print_campaign(result, verbose_front: bool = True) -> None:
    """Human-readable campaign standing (run/resume/status share it)."""
    spec = result.spec
    state = "done" if result.done else "in progress"
    print(
        f"campaign {spec.name!r}: {state} "
        f"(strategy {spec.strategy}, seed {spec.seed}, "
        f"{result.total_evaluations} evaluations)"
    )
    for cell in result.cells:
        progress = (
            f"gen {cell.generation}/{spec.generations}"
            if spec.strategy == "evolve"
            else cell.status
        )
        print(
            f"  {cell.cell.label:<24}{cell.status:<9}{progress:<12}"
            f"{cell.evaluations:>6} evals  archive {len(cell.front):>3}  "
            f"hypervolume {cell.hypervolume:.3e}"
        )
    if not verbose_front:
        return
    for cell in result.cells:
        if not cell.front:
            continue
        print(f"\n{cell.cell.label} Pareto front ({spec.cost_metric}):")
        for _design, report in cell.front:
            print(
                f"  {report.accelerator_name:<22}{report.throughput_fps:>8.1f} FPS  "
                f"{report.metric(spec.cost_metric) / 2**20:>8.2f} MiB  {report.notation}"
            )


def _finish_campaign(result, args: argparse.Namespace) -> int:
    if args.front_csv:
        try:
            with open(args.front_csv, "w", encoding="utf-8") as handle:
                handle.write(result.front_csv())
        except OSError as error:
            raise MCCMError(
                f"cannot write front CSV {args.front_csv}: {error}"
            ) from None
        print(f"[campaign] front written to {args.front_csv}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        _print_campaign(result)
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_json(args.spec)
    result = run_campaign(
        spec, args.checkpoint, jobs=args.jobs, cache_dir=args.cache
    )
    return _finish_campaign(result, args)


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    result = resume_campaign(args.checkpoint, jobs=args.jobs, cache_dir=args.cache)
    return _finish_campaign(result, args)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    result = campaign_status(args.checkpoint)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        _print_campaign(result, verbose_front=False)
    return 0


def _render_campaign_event(event: dict) -> Optional[str]:
    """One human-readable line per telemetry event (``None`` = silent)."""
    etype = event.get("type")
    if etype == "campaign_start":
        cells = event.get("cells") or []
        return (
            f"campaign {event.get('name')!r} started: {len(cells)} cell(s) "
            f"[{', '.join(str(c) for c in cells)}], strategy {event.get('strategy')}, "
            f"seed {event.get('seed')}, budget {event.get('budget')} evaluations"
        )
    if etype == "generation_done":
        best_fps = event.get("best_throughput_fps")
        best_cost = event.get("best_cost")
        fps_text = f"{best_fps:>9.1f} FPS" if best_fps is not None else "  (no feasible)"
        cost_text = (
            f"{best_cost / 2**20:>8.2f} MiB" if best_cost is not None else ""
        )
        hit = event.get("cache_hit_rate") or 0.0
        return (
            f"  gen {event.get('generation', '?'):>3}  "
            f"{event.get('label', ''):<24}front {event.get('front_size', 0):>3}  "
            f"hv {event.get('hypervolume', 0.0):.3e}  best {fps_text} {cost_text}  "
            f"cache {hit:>6.1%}  {event.get('round_evaluations', 0)} evals "
            f"in {event.get('round_seconds', 0.0):.2f}s"
        )
    if etype == "cell_done":
        return (
            f"cell done  {event.get('label', '')}  "
            f"front {event.get('front_size', 0)}  "
            f"hv {event.get('hypervolume', 0.0):.3e}  "
            f"({event.get('evaluations', 0)} evals, "
            f"{event.get('elapsed_seconds', 0.0):.1f}s)"
        )
    if etype == "campaign_done":
        cells = event.get("cells") or []
        fronts = ", ".join(
            f"{cell.get('label')} hv {cell.get('hypervolume', 0.0):.3e}"
            for cell in cells
        )
        return (
            f"campaign done: {event.get('total_evaluations', 0)} evaluations; {fronts}"
        )
    if etype == "error":
        return f"error: {event.get('message')} ({event.get('error_type')})"
    return None  # generation_start: the table stays one row per finished round


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    if bool(args.url) == bool(args.log):
        raise MCCMError(
            "campaign watch needs exactly one source: --url URL --id ID "
            "(live service stream) or --log FILE (local event log)"
        )
    if args.url:
        if not args.id:
            raise MCCMError("campaign watch --url also needs --id CAMPAIGN_ID")
        from repro.service.client import ServiceClient

        events = ServiceClient(args.url, timeout=args.timeout).stream_campaign(
            args.id, after=args.after
        )
    else:
        from repro.dse.events import read_events

        events = (event.to_dict() for event in read_events(args.log, after=args.after))
    status = 0
    for event in events:
        if args.json:
            print(
                json.dumps(event, sort_keys=True, separators=(",", ":")), flush=True
            )
        else:
            line = _render_campaign_event(event)
            if line is not None:
                print(line, flush=True)
        if event.get("type") == "error":
            status = 1
    return status


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported here so plain CLI runs never pay for the bench harness.
    from repro.runtime.bench import (
        check_hotpath_result,
        format_hotpath_result,
        run_hotpath_benchmark,
        write_hotpath_json,
    )

    samples = min(args.samples, 24) if args.quick else args.samples
    result = run_hotpath_benchmark(
        model=args.model, board=args.board, samples=samples, seed=args.seed
    )
    if args.output:
        write_hotpath_json(result, args.output)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(format_hotpath_result(result))
    if args.quick:
        problems = check_hotpath_result(result)
        if problems:
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
            return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so plain CLI runs never pay for the service module.
    from repro.service.server import serve

    return serve(
        args.host,
        args.port,
        jobs=args.jobs,
        cache_dir=args.cache,
        workers=args.workers,
        max_inflight=args.max_inflight,
    )


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.service.loadtest import (
        format_loadtest,
        run_loadtest,
        run_worker_comparison,
    )

    try:
        rates = [float(rate) for rate in args.rates.split(",") if rate.strip()]
    except ValueError:
        raise MCCMError(
            f"--rates must be comma-separated numbers, got {args.rates!r}"
        ) from None
    if any(rate <= 0 for rate in rates):
        raise MCCMError(f"--rates must all be positive, got {args.rates!r}")
    if args.url is not None:
        result = run_loadtest(
            args.url,
            rates=rates,
            duration=args.duration,
            seed=args.seed,
            model=args.model,
            board=args.board,
            client_threads=args.client_threads,
        )
    else:
        try:
            worker_counts = [int(n) for n in args.workers.split(",") if n.strip()]
        except ValueError:
            raise MCCMError(
                f"--workers must be comma-separated integers, got {args.workers!r}"
            ) from None
        if not worker_counts or any(n < 1 for n in worker_counts):
            raise MCCMError(f"--workers needs counts >= 1, got {args.workers!r}")
        result = run_worker_comparison(
            worker_counts,
            rates=rates,
            duration=args.duration,
            seed=args.seed,
            model=args.model,
            board=args.board,
            client_threads=args.client_threads,
            jobs=args.jobs,
        )
    if args.output is not None:
        Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(format_loadtest(result), end="")
    return 0


def _cmd_models_list(args: argparse.Namespace) -> int:
    names = workloads.available_models()
    if getattr(args, "json", False):
        catalog = []
        for name in names:
            stats = collect_stats(workloads.load_model(name))
            catalog.append(
                {
                    "name": name,
                    "display_name": stats.name,
                    "conv_layers": stats.conv_layer_count,
                    "gmacs": round(stats.gmacs, 3),
                    "weights_millions": round(stats.weights_millions, 3),
                    "custom": not workloads.REGISTRY.is_builtin_model(name),
                    "source": workloads.REGISTRY.model_source(name),
                }
            )
        print(json.dumps({"models": catalog}, indent=2))
        return 0
    stats = [collect_stats(workloads.load_model(name)) for name in names]
    print(stats_table(stats))
    custom = [name for name in names if not workloads.REGISTRY.is_builtin_model(name)]
    if custom:
        print(f"custom: {', '.join(custom)}", file=sys.stderr)
    return 0


def _cmd_models_register(args: argparse.Namespace) -> int:
    name = workloads.register_model(args.file, replace=True)
    graph = workloads.load_model(name)
    line = f"registered model {name!r} ({graph.num_conv_layers} conv layers)"
    if not args.no_save:
        path = workloads.save_workload(
            "model", name, workloads.REGISTRY.model_definition(name)
        )
        line += f" -> {path}"
    print(line)
    return 0


def _cmd_boards_list(args: argparse.Namespace) -> int:
    names = workloads.available_boards()
    if getattr(args, "json", False):
        print(
            json.dumps(
                {"boards": [workloads.REGISTRY.board_definition(n) for n in names]},
                indent=2,
            )
        )
        return 0
    header = f"{'board':<12}{'DSPs':>8}{'BRAM MiB':>10}{'BW GB/s':>9}"
    print(header)
    print("-" * len(header))
    for name in names:
        board = workloads.get_board(name)
        suffix = "" if workloads.REGISTRY.is_builtin_board(name) else "  (custom)"
        print(
            f"{name:<12}{board.dsp_count:>8}{board.bram_bytes / 2**20:>10.1f}"
            f"{board.bandwidth_gbps:>9.1f}{suffix}"
        )
    return 0


def _cmd_boards_register(args: argparse.Namespace) -> int:
    name = workloads.register_board(args.file, replace=True)
    board = workloads.get_board(name)
    line = (
        f"registered board {name!r} ({board.dsp_count} DSPs, "
        f"{board.bram_bytes / 2**20:.1f} MiB BRAM, {board.bandwidth_gbps:g} GB/s)"
    )
    if not args.no_save:
        path = workloads.save_workload(
            "board", name, workloads.REGISTRY.board_definition(name)
        )
        line += f" -> {path}"
    print(line)
    return 0


def _cmd_rules_list(args: argparse.Namespace) -> int:
    names = rules_registry.available_rulesets()
    if getattr(args, "json", False):
        catalog = []
        for name in names:
            definition = rules_registry.ruleset_definition(name)
            catalog.append(
                {
                    "name": name,
                    "description": definition.get("description", ""),
                    "rule_count": len(definition.get("rules", [])),
                    "custom": not rules_registry.REGISTRY.is_builtin_ruleset(name),
                    "source": rules_registry.REGISTRY.ruleset_source(name),
                    "definition": definition,
                }
            )
        print(json.dumps({"rulesets": catalog}, indent=2))
        return 0
    header = f"{'ruleset':<24}{'rules':>6}  description"
    print(header)
    print("-" * len(header))
    for name in names:
        definition = rules_registry.ruleset_definition(name)
        suffix = (
            ""
            if rules_registry.REGISTRY.is_builtin_ruleset(name)
            else "  (custom)"
        )
        description = definition.get("description", "")
        print(
            f"{name:<24}{len(definition.get('rules', [])):>6}  "
            f"{description[:60]}{suffix}"
        )
    return 0


def _cmd_rules_register(args: argparse.Namespace) -> int:
    name = rules_registry.register_ruleset(args.file, replace=True)
    definition = rules_registry.ruleset_definition(name)
    line = f"registered ruleset {name!r} ({len(definition['rules'])} rule(s))"
    if not args.no_save:
        path = rules_registry.save_ruleset(name, definition)
        line += f" -> {path}"
    print(line)
    return 0


def _cmd_rules_check(args: argparse.Namespace) -> int:
    """Judge a saved ``evaluate --json`` report against a ruleset.

    Exits 0 when every ``fail``-severity rule passes, 1 otherwise —
    scriptable as a CI gate over exported reports.
    """
    try:
        with open(args.report, "r", encoding="utf-8") as handle:
            report = report_from_json(handle.read())
    except OSError as error:
        print(f"error: cannot read report {args.report}: {error}", file=sys.stderr)
        return 2
    except (KeyError, TypeError, ValueError) as error:
        print(
            f"error: {args.report} is not a report JSON dump "
            f"({type(error).__name__}: {error})",
            file=sys.stderr,
        )
        return 2
    verdicts = rules_registry.evaluate_rules(report, args.rules)
    if getattr(args, "json", False):
        print(json.dumps([verdict.to_dict() for verdict in verdicts], indent=2))
    else:
        _print_verdicts(verdicts)
    return 1 if rules_registry.has_failures(verdicts) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MCCM: analytical cost model for multiple-CE CNN accelerators",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("evaluate", help="evaluate one accelerator")
    _add_common(cmd)
    cmd.add_argument("--arch", required=True, help="template name or notation string")
    cmd.add_argument("--ces", type=int, default=None, help="CE count (templates)")
    cmd.add_argument("--json", action="store_true", help="emit the full JSON report")
    cmd.add_argument(
        "--rules",
        default=None,
        metavar="NAME",
        help="evaluate a registered constraint ruleset against the report "
        "and attach its verdicts (see `repro rules list`)",
    )
    cmd.set_defaults(func=_cmd_evaluate)

    cmd = commands.add_parser("sweep", help="architectures x CE counts grid")
    _add_common(cmd)
    cmd.add_argument("--arch", nargs="*", help="restrict architectures")
    cmd.add_argument("--min-ces", type=int, default=2)
    cmd.add_argument("--max-ces", type=int, default=11)
    cmd.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the full JSON dump (reports + skipped configs + stats)",
    )
    _add_runtime(cmd, default_jobs="auto")
    cmd.set_defaults(func=_cmd_sweep)

    cmd = commands.add_parser("validate", help="accuracy vs reference simulator")
    _add_common(cmd)
    cmd.add_argument("--arch", required=True)
    cmd.add_argument("--ces", type=int, required=True)
    cmd.set_defaults(func=_cmd_validate)

    cmd = commands.add_parser("dse", help="explore the custom design space")
    _add_common(cmd)
    cmd.add_argument("--samples", type=int, default=500)
    cmd.add_argument("--seed", type=int, default=0)
    cmd.add_argument("--cost", default="buffers", choices=["buffers", "access"])
    cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the full JSON dump (Pareto front + stats)",
    )
    cmd.add_argument(
        "--strategy",
        default="random",
        choices=list(STRATEGY_NAMES),
        help="search strategy (default: random, the Fig. 10 experiment)",
    )
    cmd.add_argument(
        "--population",
        type=_population_int,
        default=32,
        help="evolve strategy: population per generation (>= 2)",
    )
    cmd.add_argument(
        "--generations",
        type=_nonnegative_int,
        default=10,
        help="evolve strategy: generations after the initial sample",
    )
    _add_runtime(cmd, default_jobs="auto")
    cmd.set_defaults(func=_cmd_dse)

    cmd = commands.add_parser(
        "campaign",
        help="resumable multi-objective DSE campaigns (see docs/dse.md)",
    )
    campaign_commands = cmd.add_subparsers(dest="campaign_command", required=True)

    sub = campaign_commands.add_parser(
        "run", help="start a campaign from a JSON spec (checkpointing as it goes)"
    )
    sub.add_argument("--spec", required=True, help="campaign spec JSON file")
    sub.add_argument(
        "--checkpoint",
        default=None,
        help="checkpoint JSON path (resumable after a crash/kill); "
        "refuses to overwrite an existing checkpoint",
    )
    sub.add_argument(
        "--front-csv", metavar="FILE", default=None,
        help="also export the final Pareto fronts as CSV",
    )
    sub.add_argument("--json", action="store_true", help="emit the full JSON result")
    _add_runtime(sub, default_jobs="auto")
    sub.set_defaults(func=_cmd_campaign_run)

    sub = campaign_commands.add_parser(
        "resume", help="finish a killed/interrupted campaign from its checkpoint"
    )
    sub.add_argument("--checkpoint", required=True, help="checkpoint JSON path")
    sub.add_argument(
        "--front-csv", metavar="FILE", default=None,
        help="also export the final Pareto fronts as CSV",
    )
    sub.add_argument("--json", action="store_true", help="emit the full JSON result")
    _add_runtime(sub, default_jobs="auto")
    sub.set_defaults(func=_cmd_campaign_resume)

    sub = campaign_commands.add_parser(
        "status", help="inspect a checkpoint without evaluating anything"
    )
    sub.add_argument("--checkpoint", required=True, help="checkpoint JSON path")
    sub.add_argument("--json", action="store_true", help="emit the full JSON status")
    sub.set_defaults(func=_cmd_campaign_status)

    sub = campaign_commands.add_parser(
        "watch",
        help="render the live telemetry event stream of a campaign "
        "(service stream or local event log)",
    )
    sub.add_argument(
        "--url", default=None,
        help="service base URL (e.g. http://127.0.0.1:8000); streams "
        "GET /campaign/<id>/events with reconnect-at-offset",
    )
    sub.add_argument(
        "--id", default=None, metavar="CAMPAIGN_ID",
        help="campaign id returned by POST /campaign (with --url)",
    )
    sub.add_argument(
        "--log", default=None, metavar="FILE",
        help="replay a local <checkpoint>.events NDJSON event log instead",
    )
    sub.add_argument(
        "--after", type=_nonnegative_int, default=0, metavar="SEQ",
        help="skip events with seq <= SEQ (offset resume)",
    )
    sub.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-request socket timeout in seconds (with --url)",
    )
    sub.add_argument(
        "--json", action="store_true",
        help="print each event as one canonical JSON line instead of the table",
    )
    sub.set_defaults(func=_cmd_campaign_watch)

    cmd = commands.add_parser(
        "bench", help="time the evaluation hot path (cold vs cached)"
    )
    cmd.add_argument("--model", default="xception", help="zoo model name")
    cmd.add_argument("--board", default="vcu110", help="board name")
    cmd.add_argument(
        "--samples", type=_positive_int, default=96, help="designs to sample"
    )
    cmd.add_argument("--seed", type=int, default=2025)
    cmd.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: <= 24 samples, exit 1 unless segment-cached "
        "evaluation beats cold by >= 2x with bit-identical reports",
    )
    cmd.add_argument("--json", action="store_true", help="emit the JSON result")
    cmd.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the JSON result to FILE (e.g. benchmarks/results/hotpath.json)",
    )
    cmd.set_defaults(func=_cmd_bench)

    cmd = commands.add_parser(
        "serve", help="run the concurrent HTTP evaluation service"
    )
    cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    cmd.add_argument("--port", type=int, default=8100, help="bind port (0 = ephemeral)")
    cmd.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help=(
            "pre-forked worker processes sharing the port and disk cache "
            "(supervisor restarts crashed workers; SIGTERM drains gracefully)"
        ),
    )
    cmd.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=64,
        metavar="N",
        help=(
            "per-worker bound on concurrent model-work requests before the "
            "service answers 429 backpressure (default 64)"
        ),
    )
    _add_runtime(cmd)
    cmd.set_defaults(func=_cmd_serve)

    cmd = commands.add_parser(
        "loadtest",
        help="open-loop Poisson load test against the HTTP service",
    )
    cmd.add_argument(
        "--url",
        default=None,
        help="measure a running service instead of spawning servers",
    )
    cmd.add_argument(
        "--workers",
        default="1",
        metavar="N[,N...]",
        help=(
            "worker counts to spawn and compare when no --url is given "
            "(e.g. '1,4'; default '1')"
        ),
    )
    cmd.add_argument(
        "--rates",
        default="50,100,200,400",
        metavar="R[,R...]",
        help="target request rates (req/s) for the ramp stages",
    )
    cmd.add_argument(
        "--duration",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds per ramp stage (default 2.0)",
    )
    cmd.add_argument("--seed", type=int, default=0, help="arrival-process seed")
    cmd.add_argument("--model", default="squeezenet", help="model for the request mix")
    cmd.add_argument("--board", default="zc706", help="board for the request mix")
    cmd.add_argument(
        "--client-threads",
        type=_positive_int,
        default=64,
        metavar="N",
        help="client threads firing requests (default 64)",
    )
    cmd.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the full result JSON to FILE",
    )
    cmd.add_argument(
        "--json", action="store_true", help="print the result JSON instead of the table"
    )
    cmd.add_argument(
        "--jobs",
        type=_jobs_value,
        default=1,
        help="evaluation worker processes inside each spawned server",
    )
    cmd.set_defaults(func=_cmd_loadtest)

    cmd = commands.add_parser("models", help="list or register CNN models")
    cmd.set_defaults(func=_cmd_models_list)
    model_commands = cmd.add_subparsers(dest="models_command")
    sub = model_commands.add_parser("list", help="every registered model")
    sub.add_argument("--json", action="store_true", help="emit the JSON catalog")
    sub.set_defaults(func=_cmd_models_list)
    sub = model_commands.add_parser(
        "register", help="validate and register a model JSON file"
    )
    sub.add_argument("file", help="model JSON file (cnn/serialize schema)")
    sub.add_argument(
        "--no-save",
        action="store_true",
        help="validate/register for this process only instead of persisting "
        "into the workload directory ($MCCM_WORKLOAD_DIR)",
    )
    sub.set_defaults(func=_cmd_models_register)

    cmd = commands.add_parser("boards", help="list or register FPGA boards")
    cmd.set_defaults(func=_cmd_boards_list)
    board_commands = cmd.add_subparsers(dest="boards_command")
    sub = board_commands.add_parser("list", help="every registered board")
    sub.add_argument("--json", action="store_true", help="emit the JSON catalog")
    sub.set_defaults(func=_cmd_boards_list)
    sub = board_commands.add_parser(
        "register", help="validate and register a board JSON file"
    )
    sub.add_argument("file", help="board JSON file (see docs/api.md)")
    sub.add_argument(
        "--no-save",
        action="store_true",
        help="validate/register for this process only instead of persisting "
        "into the workload directory ($MCCM_WORKLOAD_DIR)",
    )
    sub.set_defaults(func=_cmd_boards_register)

    cmd = commands.add_parser(
        "rules", help="list, register, or check constraint rulesets"
    )
    cmd.set_defaults(func=_cmd_rules_list)
    rule_commands = cmd.add_subparsers(dest="rules_command")
    sub = rule_commands.add_parser("list", help="every registered ruleset")
    sub.add_argument("--json", action="store_true", help="emit the JSON catalog")
    sub.set_defaults(func=_cmd_rules_list)
    sub = rule_commands.add_parser(
        "register", help="validate and register a ruleset JSON file"
    )
    sub.add_argument("file", help="ruleset JSON file (see docs/rules.md)")
    sub.add_argument(
        "--no-save",
        action="store_true",
        help="validate/register for this process only instead of persisting "
        "into the rule directory ($MCCM_RULE_DIR)",
    )
    sub.set_defaults(func=_cmd_rules_register)
    sub = rule_commands.add_parser(
        "check",
        help="judge a saved `evaluate --json` report against a ruleset "
        "(exit 1 on fail verdicts)",
    )
    sub.add_argument("report", help="report JSON file (from evaluate --json)")
    sub.add_argument(
        "--rules",
        default=rules_registry.BUILTIN_RESOURCES,
        metavar="NAME",
        help="registered ruleset to check against (default: builtin:resources)",
    )
    sub.add_argument("--json", action="store_true", help="emit the JSON verdicts")
    sub.set_defaults(func=_cmd_rules_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # Models/boards/rulesets persisted by `repro ... register` load
        # into their registries before any command resolves names.
        workloads.load_workload_dir()
        rules_registry.load_rule_dir()
        return args.func(args)
    except MCCMError as error:
        # Covers unknown model/board names too: the workload registry
        # raises UnknownWorkloadError, an MCCMError with suggestions.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
