"""Aggregate CNN statistics (the quantities in the paper's Table III)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cnn.graph import CNNGraph
from repro.cnn.layers import LayerKind


@dataclass(frozen=True)
class ModelStats:
    """Summary statistics for one CNN.

    ``weights_millions`` and ``conv_layer_count`` correspond to the two rows
    of Table III; the rest feed the workload-proportional heuristics.
    """

    name: str
    conv_layer_count: int
    total_weights: int
    conv_weights: int
    total_macs: int
    conv_macs: int
    conv_kind_counts: Dict[str, int]
    peak_fms_elements: int

    @property
    def weights_millions(self) -> float:
        return self.total_weights / 1e6

    @property
    def gmacs(self) -> float:
        return self.total_macs / 1e9

    @property
    def has_depthwise(self) -> bool:
        return self.conv_kind_counts.get(LayerKind.DEPTHWISE_CONV.value, 0) > 0


def collect_stats(graph: CNNGraph) -> ModelStats:
    """Compute :class:`ModelStats` for ``graph``."""
    kind_counts: Dict[str, int] = {}
    for layer in graph.conv_layers():
        kind_counts[layer.kind.value] = kind_counts.get(layer.kind.value, 0) + 1
    peak_fms = max((spec.fms_elements for spec in graph.conv_specs()), default=0)
    return ModelStats(
        name=graph.name,
        conv_layer_count=graph.num_conv_layers,
        total_weights=graph.total_weights,
        conv_weights=graph.conv_weights,
        total_macs=graph.total_macs,
        conv_macs=graph.conv_macs,
        conv_kind_counts=kind_counts,
        peak_fms_elements=peak_fms,
    )


def stats_table(stats: List[ModelStats]) -> str:
    """Render a Table-III-style text table for a list of model stats."""
    header = f"{'model':<16}{'conv layers':>12}{'weights (M)':>14}{'GMACs':>10}"
    lines = [header, "-" * len(header)]
    for entry in stats:
        lines.append(
            f"{entry.name:<16}{entry.conv_layer_count:>12}"
            f"{entry.weights_millions:>14.1f}{entry.gmacs:>10.2f}"
        )
    return "\n".join(lines)
