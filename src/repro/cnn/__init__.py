"""CNN intermediate representation: layers, DAGs, statistics, model zoo."""

from repro.cnn.graph import CNNGraph, ConvSpec
from repro.cnn.layers import (
    AddLayer,
    ConcatLayer,
    ConvLayer,
    DenseLayer,
    DepthwiseConvLayer,
    GlobalPoolLayer,
    InputLayer,
    Layer,
    LayerKind,
    Padding,
    PoolLayer,
    TensorShape,
)
from repro.cnn.serialize import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)
from repro.cnn.stats import ModelStats, collect_stats, stats_table

__all__ = [
    "CNNGraph",
    "ConvSpec",
    "AddLayer",
    "ConcatLayer",
    "ConvLayer",
    "DenseLayer",
    "DepthwiseConvLayer",
    "GlobalPoolLayer",
    "InputLayer",
    "Layer",
    "LayerKind",
    "Padding",
    "PoolLayer",
    "TensorShape",
    "graph_from_dict",
    "graph_from_json",
    "graph_to_dict",
    "graph_to_json",
    "ModelStats",
    "collect_stats",
    "stats_table",
]
