"""CNN layer intermediate representation.

The cost model consumes CNNs as a topologically ordered sequence of
convolutional layers (Section II-A): convolutions dominate (>90% of
operations, Section II-B), so non-conv layers (pooling, element-wise adds,
concatenations, dense heads) are carried for shape inference and residual
bookkeeping but contribute no PE work in the model, matching the paper's
focus on convolution CEs.

Every layer exposes the quantities the analytical equations need:

* the six disjoint convolution loop dimensions (Eq. 1) — filters ``K``,
  input channels ``C``, output rows ``H``, output columns ``W``, kernel rows
  ``R`` and kernel columns ``S``;
* IFM/OFM/weight element counts, for the buffer (Eqs. 4, 5, 8) and access
  (Eqs. 6, 7, 9) models;
* MAC counts, for workload-proportional PE distribution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.utils.errors import ShapeError
from repro.utils.mathutils import ceil_div


@dataclass(frozen=True)
class TensorShape:
    """Shape of a feature map: ``height x width x channels`` (NHWC, N=1)."""

    height: int
    width: int
    channels: int

    def __post_init__(self) -> None:
        for name in ("height", "width", "channels"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ShapeError(f"{name} must be a positive int, got {value!r}")

    @property
    def elements(self) -> int:
        """Total number of scalar elements in the feature map."""
        return self.height * self.width * self.channels

    def with_channels(self, channels: int) -> "TensorShape":
        """A copy of this shape with a different channel count."""
        return TensorShape(self.height, self.width, channels)

    def __str__(self) -> str:
        return f"{self.height}x{self.width}x{self.channels}"


class Padding(enum.Enum):
    """Spatial padding mode, mirroring the Keras convention."""

    SAME = "same"
    VALID = "valid"


class LayerKind(enum.Enum):
    """Discriminates layer roles for the cost model.

    ``STANDARD_CONV``, ``DEPTHWISE_CONV`` and ``POINTWISE_CONV`` are the
    compute-bearing kinds; everything else is shape plumbing. Pointwise is a
    1x1 standard convolution kept distinct because Hybrid architectures
    dedicate sub-engines per convolution type (Section II-C).
    """

    INPUT = "input"
    STANDARD_CONV = "conv"
    DEPTHWISE_CONV = "dwconv"
    POINTWISE_CONV = "pwconv"
    POOL = "pool"
    GLOBAL_POOL = "global_pool"
    DENSE = "dense"
    ADD = "add"
    CONCAT = "concat"
    FLATTEN = "flatten"

    @property
    def is_conv(self) -> bool:
        return self in (
            LayerKind.STANDARD_CONV,
            LayerKind.DEPTHWISE_CONV,
            LayerKind.POINTWISE_CONV,
        )


def conv_output_size(input_size: int, kernel: int, stride: int, padding: Padding) -> int:
    """Spatial output size of a convolution or pooling window."""
    if input_size <= 0 or kernel <= 0 or stride <= 0:
        raise ShapeError(
            f"sizes must be positive: input={input_size} kernel={kernel} stride={stride}"
        )
    if padding is Padding.SAME:
        return ceil_div(input_size, stride)
    if kernel > input_size:
        raise ShapeError(f"VALID padding: kernel {kernel} exceeds input {input_size}")
    return (input_size - kernel) // stride + 1


@dataclass
class Layer:
    """Base layer: a named node with one primary input shape.

    Subclasses override :meth:`infer_output_shape` and the cost properties.
    ``residual_copies`` records how many live copies of this layer's OFM the
    schedule must hold (Eq. 4 note: FMs must account for multiple copies when
    a layer feeds a residual connection); the graph fills it in.
    """

    name: str
    input_shape: TensorShape
    kind: LayerKind = field(default=LayerKind.INPUT, init=False)
    residual_copies: int = field(default=1, init=False)

    def infer_output_shape(self) -> TensorShape:
        return self.input_shape

    @property
    def output_shape(self) -> TensorShape:
        return self.infer_output_shape()

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations performed by this layer."""
        return 0

    @property
    def weight_count(self) -> int:
        """Number of trainable scalar weights."""
        return 0

    @property
    def ifm_elements(self) -> int:
        return self.input_shape.elements

    @property
    def ofm_elements(self) -> int:
        return self.output_shape.elements

    def describe(self) -> Dict[str, object]:
        """Human/JSON-friendly summary used by the serializer and reports."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "input_shape": str(self.input_shape),
            "output_shape": str(self.output_shape),
            "macs": self.macs,
            "weights": self.weight_count,
        }


@dataclass
class InputLayer(Layer):
    """The network input; holds the image shape."""

    def __post_init__(self) -> None:
        self.kind = LayerKind.INPUT


@dataclass
class ConvLayer(Layer):
    """Standard 2-D convolution.

    ``groups`` covers grouped convolutions (ResNeXt-style); depthwise
    convolutions use the dedicated subclass for clarity in per-type engine
    assignment.
    """

    filters: int = 1
    kernel_size: Tuple[int, int] = (3, 3)
    strides: Tuple[int, int] = (1, 1)
    padding: Padding = Padding.SAME
    groups: int = 1

    def __post_init__(self) -> None:
        self.kind = (
            LayerKind.POINTWISE_CONV if self.kernel_size == (1, 1) else LayerKind.STANDARD_CONV
        )
        if self.filters <= 0:
            raise ShapeError(f"{self.name}: filters must be positive, got {self.filters}")
        if any(k <= 0 for k in self.kernel_size) or any(s <= 0 for s in self.strides):
            raise ShapeError(f"{self.name}: kernel and stride entries must be positive")
        if self.groups <= 0 or self.input_shape.channels % self.groups != 0:
            raise ShapeError(
                f"{self.name}: groups={self.groups} must divide input channels "
                f"{self.input_shape.channels}"
            )
        if self.filters % self.groups != 0:
            raise ShapeError(
                f"{self.name}: groups={self.groups} must divide filters {self.filters}"
            )

    def infer_output_shape(self) -> TensorShape:
        out_h = conv_output_size(
            self.input_shape.height, self.kernel_size[0], self.strides[0], self.padding
        )
        out_w = conv_output_size(
            self.input_shape.width, self.kernel_size[1], self.strides[1], self.padding
        )
        return TensorShape(out_h, out_w, self.filters)

    # -- Disjoint loop dimensions (Eq. 1) ------------------------------------
    @property
    def loop_filters(self) -> int:
        return self.filters

    @property
    def loop_channels(self) -> int:
        return self.input_shape.channels // self.groups

    @property
    def loop_out_height(self) -> int:
        return self.output_shape.height

    @property
    def loop_out_width(self) -> int:
        return self.output_shape.width

    @property
    def loop_kernel_height(self) -> int:
        return self.kernel_size[0]

    @property
    def loop_kernel_width(self) -> int:
        return self.kernel_size[1]

    @property
    def macs(self) -> int:
        out = self.output_shape
        return (
            out.height
            * out.width
            * self.filters
            * self.loop_channels
            * self.kernel_size[0]
            * self.kernel_size[1]
        )

    @property
    def weight_count(self) -> int:
        return self.filters * self.loop_channels * self.kernel_size[0] * self.kernel_size[1]

    def describe(self) -> Dict[str, object]:
        base = super().describe()
        base.update(
            {
                "filters": self.filters,
                "kernel_size": list(self.kernel_size),
                "strides": list(self.strides),
                "padding": self.padding.value,
                "groups": self.groups,
            }
        )
        return base


@dataclass
class DepthwiseConvLayer(Layer):
    """Depthwise 2-D convolution: one filter per input channel."""

    kernel_size: Tuple[int, int] = (3, 3)
    strides: Tuple[int, int] = (1, 1)
    padding: Padding = Padding.SAME
    depth_multiplier: int = 1

    def __post_init__(self) -> None:
        self.kind = LayerKind.DEPTHWISE_CONV
        if any(k <= 0 for k in self.kernel_size) or any(s <= 0 for s in self.strides):
            raise ShapeError(f"{self.name}: kernel and stride entries must be positive")
        if self.depth_multiplier <= 0:
            raise ShapeError(f"{self.name}: depth_multiplier must be positive")

    def infer_output_shape(self) -> TensorShape:
        out_h = conv_output_size(
            self.input_shape.height, self.kernel_size[0], self.strides[0], self.padding
        )
        out_w = conv_output_size(
            self.input_shape.width, self.kernel_size[1], self.strides[1], self.padding
        )
        return TensorShape(out_h, out_w, self.input_shape.channels * self.depth_multiplier)

    @property
    def loop_filters(self) -> int:
        return self.output_shape.channels

    @property
    def loop_channels(self) -> int:
        # Each output channel reads exactly one input channel.
        return 1

    @property
    def loop_out_height(self) -> int:
        return self.output_shape.height

    @property
    def loop_out_width(self) -> int:
        return self.output_shape.width

    @property
    def loop_kernel_height(self) -> int:
        return self.kernel_size[0]

    @property
    def loop_kernel_width(self) -> int:
        return self.kernel_size[1]

    @property
    def macs(self) -> int:
        out = self.output_shape
        return out.height * out.width * out.channels * self.kernel_size[0] * self.kernel_size[1]

    @property
    def weight_count(self) -> int:
        return self.output_shape.channels * self.kernel_size[0] * self.kernel_size[1]

    def describe(self) -> Dict[str, object]:
        base = super().describe()
        base.update(
            {
                "kernel_size": list(self.kernel_size),
                "strides": list(self.strides),
                "padding": self.padding.value,
                "depth_multiplier": self.depth_multiplier,
            }
        )
        return base


@dataclass
class PoolLayer(Layer):
    """Max/average pooling. No weights; negligible compute in the model."""

    pool_size: Tuple[int, int] = (2, 2)
    strides: Optional[Tuple[int, int]] = None
    padding: Padding = Padding.VALID
    mode: str = "max"

    def __post_init__(self) -> None:
        self.kind = LayerKind.POOL
        if self.strides is None:
            self.strides = self.pool_size
        if self.mode not in ("max", "avg"):
            raise ShapeError(f"{self.name}: pooling mode must be 'max' or 'avg'")

    def infer_output_shape(self) -> TensorShape:
        assert self.strides is not None
        out_h = conv_output_size(
            self.input_shape.height, self.pool_size[0], self.strides[0], self.padding
        )
        out_w = conv_output_size(
            self.input_shape.width, self.pool_size[1], self.strides[1], self.padding
        )
        return TensorShape(out_h, out_w, self.input_shape.channels)


@dataclass
class GlobalPoolLayer(Layer):
    """Global average pooling, collapsing the spatial dimensions to 1x1."""

    def __post_init__(self) -> None:
        self.kind = LayerKind.GLOBAL_POOL

    def infer_output_shape(self) -> TensorShape:
        return TensorShape(1, 1, self.input_shape.channels)


@dataclass
class DenseLayer(Layer):
    """Fully connected classifier head."""

    units: int = 1000

    def __post_init__(self) -> None:
        self.kind = LayerKind.DENSE
        if self.units <= 0:
            raise ShapeError(f"{self.name}: units must be positive")

    def infer_output_shape(self) -> TensorShape:
        return TensorShape(1, 1, self.units)

    @property
    def macs(self) -> int:
        return self.input_shape.elements * self.units

    @property
    def weight_count(self) -> int:
        return self.input_shape.elements * self.units


@dataclass
class AddLayer(Layer):
    """Element-wise addition merging a residual connection."""

    def __post_init__(self) -> None:
        self.kind = LayerKind.ADD


@dataclass
class ConcatLayer(Layer):
    """Channel concatenation (DenseNet-style merges).

    ``extra_channels`` is the channel count contributed by the secondary
    inputs beyond the primary input's channels.
    """

    extra_channels: int = 0

    def __post_init__(self) -> None:
        self.kind = LayerKind.CONCAT
        if self.extra_channels < 0:
            raise ShapeError(f"{self.name}: extra_channels must be non-negative")

    def infer_output_shape(self) -> TensorShape:
        return self.input_shape.with_channels(self.input_shape.channels + self.extra_channels)
