"""JSON serialization of CNN graphs.

The paper's methodology accepts a CNN as a "DAG / Keras" description
(Fig. 3). With no deep-learning framework available offline, the DAG input
path is a JSON document; this module round-trips :class:`CNNGraph` to and
from that format so external model descriptions can be fed to the evaluator.

Schema (one JSON object)::

    {
      "name": "ResNet50",
      "layers": [
        {"name": "input", "kind": "input", "shape": [224, 224, 3]},
        {"name": "conv1", "kind": "conv", "inputs": ["input"],
         "filters": 64, "kernel_size": [7, 7], "strides": [2, 2],
         "padding": "same"},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.cnn.graph import CNNGraph
from repro.cnn.layers import (
    AddLayer,
    ConcatLayer,
    ConvLayer,
    DenseLayer,
    DepthwiseConvLayer,
    GlobalPoolLayer,
    InputLayer,
    Layer,
    LayerKind,
    Padding,
    PoolLayer,
    TensorShape,
)
from repro.utils.errors import ShapeError


def graph_to_dict(graph: CNNGraph) -> Dict[str, Any]:
    """Serialize ``graph`` into the JSON-compatible dict schema."""
    layers: List[Dict[str, Any]] = []
    for layer in graph.topological_order():
        entry: Dict[str, Any] = {
            "name": layer.name,
            "kind": layer.kind.value,
            "inputs": graph.predecessors(layer.name),
            "input_shape": [
                layer.input_shape.height,
                layer.input_shape.width,
                layer.input_shape.channels,
            ],
        }
        if isinstance(layer, ConvLayer):
            entry.update(
                filters=layer.filters,
                kernel_size=list(layer.kernel_size),
                strides=list(layer.strides),
                padding=layer.padding.value,
                groups=layer.groups,
            )
        elif isinstance(layer, DepthwiseConvLayer):
            entry.update(
                kernel_size=list(layer.kernel_size),
                strides=list(layer.strides),
                padding=layer.padding.value,
                depth_multiplier=layer.depth_multiplier,
            )
        elif isinstance(layer, PoolLayer):
            entry.update(
                pool_size=list(layer.pool_size),
                strides=list(layer.strides or layer.pool_size),
                padding=layer.padding.value,
                mode=layer.mode,
            )
        elif isinstance(layer, DenseLayer):
            entry.update(units=layer.units)
        elif isinstance(layer, ConcatLayer):
            entry.update(extra_channels=layer.extra_channels)
        layers.append(entry)
    return {"name": graph.name, "layers": layers}


def graph_to_json(graph: CNNGraph, indent: int = 2) -> str:
    """Serialize ``graph`` to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def _shape_from(entry: Dict[str, Any]) -> TensorShape:
    shape = entry.get("input_shape") or entry.get("shape")
    if not shape or len(shape) != 3:
        raise ShapeError(f"layer {entry.get('name')!r}: missing or bad shape {shape!r}")
    return TensorShape(int(shape[0]), int(shape[1]), int(shape[2]))


def _layer_from_dict(entry: Dict[str, Any]) -> Layer:
    name = entry.get("name")
    if not name:
        raise ShapeError("layer entry missing 'name'")
    kind = entry.get("kind")
    shape = _shape_from(entry)
    if kind == LayerKind.INPUT.value:
        return InputLayer(name=name, input_shape=shape)
    if kind in (LayerKind.STANDARD_CONV.value, LayerKind.POINTWISE_CONV.value):
        return ConvLayer(
            name=name,
            input_shape=shape,
            filters=int(entry["filters"]),
            kernel_size=tuple(entry.get("kernel_size", (3, 3))),  # type: ignore[arg-type]
            strides=tuple(entry.get("strides", (1, 1))),  # type: ignore[arg-type]
            padding=Padding(entry.get("padding", "same")),
            groups=int(entry.get("groups", 1)),
        )
    if kind == LayerKind.DEPTHWISE_CONV.value:
        return DepthwiseConvLayer(
            name=name,
            input_shape=shape,
            kernel_size=tuple(entry.get("kernel_size", (3, 3))),  # type: ignore[arg-type]
            strides=tuple(entry.get("strides", (1, 1))),  # type: ignore[arg-type]
            padding=Padding(entry.get("padding", "same")),
            depth_multiplier=int(entry.get("depth_multiplier", 1)),
        )
    if kind == LayerKind.POOL.value:
        return PoolLayer(
            name=name,
            input_shape=shape,
            pool_size=tuple(entry.get("pool_size", (2, 2))),  # type: ignore[arg-type]
            strides=tuple(entry["strides"]) if "strides" in entry else None,  # type: ignore[arg-type]
            padding=Padding(entry.get("padding", "valid")),
            mode=entry.get("mode", "max"),
        )
    if kind == LayerKind.GLOBAL_POOL.value:
        return GlobalPoolLayer(name=name, input_shape=shape)
    if kind == LayerKind.DENSE.value:
        return DenseLayer(name=name, input_shape=shape, units=int(entry["units"]))
    if kind == LayerKind.ADD.value:
        return AddLayer(name=name, input_shape=shape)
    if kind == LayerKind.CONCAT.value:
        return ConcatLayer(
            name=name, input_shape=shape, extra_channels=int(entry.get("extra_channels", 0))
        )
    if kind == LayerKind.FLATTEN.value:
        layer = Layer(name=name, input_shape=shape)
        layer.kind = LayerKind.FLATTEN
        return layer
    raise ShapeError(f"layer {name!r}: unknown kind {kind!r}")


def graph_from_dict(data: Dict[str, Any]) -> CNNGraph:
    """Deserialize a graph from the dict schema, validating shapes."""
    name = data.get("name")
    if not name:
        raise ShapeError("model description missing 'name'")
    entries = data.get("layers")
    if not entries:
        raise ShapeError("model description has no layers")
    graph = CNNGraph(name)
    for entry in entries:
        layer = _layer_from_dict(entry)
        graph.add(layer, entry.get("inputs", ()))
    graph.validate()
    return graph


def graph_from_json(text: str) -> CNNGraph:
    """Deserialize a graph from a JSON string."""
    return graph_from_dict(json.loads(text))
