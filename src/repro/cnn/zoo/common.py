"""Fluent builder used by the model zoo to assemble CNN graphs.

The zoo constructs each network layer by layer; this helper keeps track of
the "cursor" (the most recently added layer) and derives input shapes from
predecessor outputs so the zoo modules read like architecture descriptions.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple, Union

from repro.cnn.graph import CNNGraph
from repro.cnn.layers import (
    AddLayer,
    ConcatLayer,
    ConvLayer,
    DenseLayer,
    DepthwiseConvLayer,
    GlobalPoolLayer,
    InputLayer,
    Padding,
    PoolLayer,
    TensorShape,
)

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


class NetBuilder:
    """Incremental CNN graph builder with automatic shape threading."""

    def __init__(self, name: str, input_shape: Tuple[int, int, int]) -> None:
        self.graph = CNNGraph(name)
        shape = TensorShape(*input_shape)
        self.graph.add(InputLayer(name="input", input_shape=shape))
        self.head = "input"
        self._counters = {prefix: itertools.count(1) for prefix in ()}

    def _auto_name(self, prefix: str) -> str:
        counter = self._counters.setdefault(prefix, itertools.count(1))
        return f"{prefix}{next(counter)}"

    def output_shape(self, layer_name: Optional[str] = None) -> TensorShape:
        """Output shape of ``layer_name`` (default: the cursor layer)."""
        return self.graph.layer(layer_name or self.head).output_shape

    # -- layer adders; each returns the new layer's name and moves the cursor --
    def conv(
        self,
        filters: int,
        kernel: IntOrPair = 3,
        stride: IntOrPair = 1,
        padding: Padding = Padding.SAME,
        groups: int = 1,
        source: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        source = source or self.head
        layer = ConvLayer(
            name=name or self._auto_name("conv"),
            input_shape=self.output_shape(source),
            filters=filters,
            kernel_size=_pair(kernel),
            strides=_pair(stride),
            padding=padding,
            groups=groups,
        )
        self.graph.add(layer, [source])
        self.head = layer.name
        return layer.name

    def dwconv(
        self,
        kernel: IntOrPair = 3,
        stride: IntOrPair = 1,
        padding: Padding = Padding.SAME,
        source: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        source = source or self.head
        layer = DepthwiseConvLayer(
            name=name or self._auto_name("dwconv"),
            input_shape=self.output_shape(source),
            kernel_size=_pair(kernel),
            strides=_pair(stride),
            padding=padding,
        )
        self.graph.add(layer, [source])
        self.head = layer.name
        return layer.name

    def separable(
        self,
        filters: int,
        kernel: IntOrPair = 3,
        stride: IntOrPair = 1,
        source: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        """Depthwise-separable convolution: depthwise then pointwise."""
        base = name or self._auto_name("sep")
        self.dwconv(kernel=kernel, stride=stride, source=source, name=f"{base}_dw")
        return self.conv(filters=filters, kernel=1, name=f"{base}_pw")

    def pool(
        self,
        size: IntOrPair = 2,
        stride: Optional[IntOrPair] = None,
        padding: Padding = Padding.VALID,
        mode: str = "max",
        source: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        source = source or self.head
        layer = PoolLayer(
            name=name or self._auto_name("pool"),
            input_shape=self.output_shape(source),
            pool_size=_pair(size),
            strides=_pair(stride) if stride is not None else None,
            padding=padding,
            mode=mode,
        )
        self.graph.add(layer, [source])
        self.head = layer.name
        return layer.name

    def global_pool(self, source: Optional[str] = None, name: Optional[str] = None) -> str:
        source = source or self.head
        layer = GlobalPoolLayer(
            name=name or self._auto_name("gap"), input_shape=self.output_shape(source)
        )
        self.graph.add(layer, [source])
        self.head = layer.name
        return layer.name

    def dense(self, units: int, source: Optional[str] = None, name: Optional[str] = None) -> str:
        source = source or self.head
        layer = DenseLayer(
            name=name or self._auto_name("fc"),
            input_shape=self.output_shape(source),
            units=units,
        )
        self.graph.add(layer, [source])
        self.head = layer.name
        return layer.name

    def residual_add(self, left: str, right: str, name: Optional[str] = None) -> str:
        layer = AddLayer(
            name=name or self._auto_name("add"), input_shape=self.output_shape(left)
        )
        self.graph.add(layer, [left, right])
        self.head = layer.name
        return layer.name

    def concat(self, sources: Sequence[str], name: Optional[str] = None) -> str:
        primary = sources[0]
        extra = sum(self.output_shape(s).channels for s in sources[1:])
        layer = ConcatLayer(
            name=name or self._auto_name("concat"),
            input_shape=self.output_shape(primary),
            extra_channels=extra,
        )
        self.graph.add(layer, list(sources))
        self.head = layer.name
        return layer.name

    def build(self) -> CNNGraph:
        """Validate and return the completed graph."""
        self.graph.validate()
        return self.graph
