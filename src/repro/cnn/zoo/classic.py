"""Classic plain CNNs (VGG-16, AlexNet) kept as extra workloads.

These are not in the paper's Table III but exercise the cost model on
shallow, channel-heavy networks with no residuals, which is a useful
contrast in tests and examples.
"""

from __future__ import annotations

from repro.cnn.graph import CNNGraph
from repro.cnn.layers import Padding
from repro.cnn.zoo.common import NetBuilder


def vgg16(input_size: int = 224, num_classes: int = 1000) -> CNNGraph:
    """VGG-16: 13 conv layers + 3 dense layers, ~138M weights."""
    net = NetBuilder("VGG16", (input_size, input_size, 3))
    plan = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)]
    for stage, (filters, repeats) in enumerate(plan, start=1):
        for block in range(1, repeats + 1):
            net.conv(filters, kernel=3, name=f"s{stage}c{block}")
        net.pool(size=2, stride=2, mode="max", name=f"s{stage}_pool")
    net.dense(4096, name="fc1")
    net.dense(4096, name="fc2")
    net.dense(num_classes, name="classifier")
    return net.build()


def alexnet(input_size: int = 227, num_classes: int = 1000) -> CNNGraph:
    """AlexNet: 5 conv layers + 3 dense layers."""
    net = NetBuilder("AlexNet", (input_size, input_size, 3))
    net.conv(96, kernel=11, stride=4, padding=Padding.VALID, name="conv1")
    net.pool(size=3, stride=2, mode="max", name="pool1")
    net.conv(256, kernel=5, name="conv2")
    net.pool(size=3, stride=2, mode="max", name="pool2")
    net.conv(384, kernel=3, name="conv3")
    net.conv(384, kernel=3, name="conv4")
    net.conv(256, kernel=3, name="conv5")
    net.pool(size=3, stride=2, mode="max", name="pool5")
    net.dense(4096, name="fc1")
    net.dense(4096, name="fc2")
    net.dense(num_classes, name="classifier")
    return net.build()
