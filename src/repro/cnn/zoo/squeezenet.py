"""SqueezeNet 1.1 (Iandola et al., 2016): fire modules.

A tiny, concat-branching workload: each fire module squeezes with a 1x1
conv and expands through parallel 1x1 and 3x3 convs whose outputs
concatenate. Exercises the cost model on branch-heavy, low-weight CNNs —
the opposite end of the spectrum from ResNet152.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cnn.graph import CNNGraph
from repro.cnn.layers import Padding
from repro.cnn.zoo.common import NetBuilder

#: (squeeze, expand) channel plan of SqueezeNet 1.1's eight fire modules.
FIRE_PLAN: List[Tuple[int, int]] = [
    (16, 64),
    (16, 64),
    (32, 128),
    (32, 128),
    (48, 192),
    (48, 192),
    (64, 256),
    (64, 256),
]

#: Fire-module indices (1-based) preceded by a max-pool in v1.1.
POOL_BEFORE = {1, 3, 5}


def _fire(net: NetBuilder, index: int, squeeze: int, expand: int) -> None:
    prefix = f"fire{index}"
    net.conv(squeeze, kernel=1, name=f"{prefix}_squeeze")
    squeezed = net.head
    left = net.conv(expand, kernel=1, source=squeezed, name=f"{prefix}_e1")
    right = net.conv(expand, kernel=3, source=squeezed, name=f"{prefix}_e3")
    net.concat([left, right], name=f"{prefix}_concat")


def squeezenet(input_size: int = 224, num_classes: int = 1000) -> CNNGraph:
    """SqueezeNet 1.1: 26 conv layers, ~1.2M weights, no dense layers."""
    net = NetBuilder("SqueezeNet", (input_size, input_size, 3))
    net.conv(64, kernel=3, stride=2, padding=Padding.VALID, name="conv1")
    for index, (squeeze, expand) in enumerate(FIRE_PLAN, start=1):
        if index in POOL_BEFORE:
            net.pool(size=3, stride=2, mode="max", name=f"pool{index}")
        _fire(net, index, squeeze, expand)
    # Classifier: 1x1 conv to class scores, then global average pooling.
    net.conv(num_classes, kernel=1, name="conv10")
    net.global_pool(name="avg_pool")
    return net.build()
