"""CNN model zoo: the paper's Table III workloads plus classic extras.

Models are built on demand and cached, since graph construction is cheap but
not free and benchmarks request the same models repeatedly.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List

from repro.cnn.graph import CNNGraph
from repro.utils.errors import UnknownWorkloadError
from repro.cnn.zoo.classic import alexnet, vgg16
from repro.cnn.zoo.densenet import build_densenet, densenet121
from repro.cnn.zoo.efficientnet import efficientnet_lite0
from repro.cnn.zoo.mobilenet import mobilenet_v2
from repro.cnn.zoo.resnet import build_resnet, resnet50, resnet152
from repro.cnn.zoo.squeezenet import squeezenet
from repro.cnn.zoo.xception import xception

_BUILDERS: Dict[str, Callable[[], CNNGraph]] = {
    "resnet50": resnet50,
    "resnet152": resnet152,
    "xception": xception,
    "mobilenetv2": mobilenet_v2,
    "densenet121": densenet121,
    "vgg16": vgg16,
    "alexnet": alexnet,
    "efficientnetlite0": efficientnet_lite0,
    "squeezenet": squeezenet,
}

#: Abbreviations used throughout the paper's tables and figures.
ABBREVIATIONS: Dict[str, str] = {
    "res50": "resnet50",
    "res152": "resnet152",
    "xcp": "xception",
    "mobv2": "mobilenetv2",
    "dns121": "densenet121",
    "efflite0": "efficientnetlite0",
    "sqz": "squeezenet",
}

#: The five Table III workloads, in the paper's column order.
PAPER_MODELS: List[str] = ["resnet152", "resnet50", "xception", "densenet121", "mobilenetv2"]


def available_models() -> List[str]:
    """Canonical names of every model the zoo can build."""
    return sorted(_BUILDERS)


@lru_cache(maxsize=None)
def _load_canonical(key: str) -> CNNGraph:
    return _BUILDERS[key]()


def load_model(name: str) -> CNNGraph:
    """Build (or fetch the cached) model by canonical name or abbreviation.

    Lookup is case-insensitive and the cache is keyed on the canonical
    name, so every spelling returns the same graph object. The zoo only
    knows built-in models; :mod:`repro.workloads` resolves custom ones.
    """
    key = name.strip().lower()
    key = ABBREVIATIONS.get(key, key)
    if key not in _BUILDERS:
        # A KeyError subclass, so historical callers keep working.
        raise UnknownWorkloadError("model", name, _BUILDERS)
    return _load_canonical(key)


__all__ = [
    "ABBREVIATIONS",
    "PAPER_MODELS",
    "available_models",
    "load_model",
    "alexnet",
    "build_densenet",
    "build_resnet",
    "densenet121",
    "efficientnet_lite0",
    "squeezenet",
    "mobilenet_v2",
    "resnet50",
    "resnet152",
    "vgg16",
    "xception",
]
