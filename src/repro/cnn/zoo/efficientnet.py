"""EfficientNet-Lite0 (Tan & Le, ICML 2019; Lite variant without SE).

The paper argues its results generalize because MobileNetV2's MBConv block
"is used in EfficientNet [35] and MnasNet [34]" — this model exercises
exactly that generalization: the same inverted-residual structure at
different widths/depths (the Lite variant drops squeeze-and-excitation,
which has no convolutional-loop-nest representation).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cnn.graph import CNNGraph
from repro.cnn.zoo.common import NetBuilder

#: (expansion, output channels, repeats, first stride, kernel) per stage —
#: EfficientNet-B0's Table 1 with the Lite tweaks (fixed stem/head).
EFFICIENTNET_LITE0_STAGES: List[Tuple[int, int, int, int, int]] = [
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
]


def _mbconv(
    net: NetBuilder,
    stage: int,
    block: int,
    expansion: int,
    out_channels: int,
    stride: int,
    kernel: int,
) -> None:
    prefix = f"s{stage}b{block}"
    entry = net.head
    in_channels = net.output_shape(entry).channels
    if expansion != 1:
        net.conv(in_channels * expansion, kernel=1, source=entry, name=f"{prefix}_expand")
    net.dwconv(kernel=kernel, stride=stride, name=f"{prefix}_dw")
    main = net.conv(out_channels, kernel=1, name=f"{prefix}_project")
    if stride == 1 and in_channels == out_channels:
        net.residual_add(main, entry, name=f"{prefix}_add")


def efficientnet_lite0(input_size: int = 224, num_classes: int = 1000) -> CNNGraph:
    """EfficientNet-Lite0: 49 conv layers, ~4.0M weights."""
    net = NetBuilder("EfficientNetLite0", (input_size, input_size, 3))
    net.conv(32, kernel=3, stride=2, name="stem_conv")
    for stage, (expansion, channels, repeats, first_stride, kernel) in enumerate(
        EFFICIENTNET_LITE0_STAGES, start=1
    ):
        for block in range(1, repeats + 1):
            stride = first_stride if block == 1 else 1
            _mbconv(net, stage, block, expansion, channels, stride, kernel)
    net.conv(1280, kernel=1, name="head_conv")
    net.global_pool(name="avg_pool")
    net.dense(num_classes, name="classifier")
    return net.build()
