"""MobileNetV2 (Sandler et al., CVPR 2018): inverted residual bottlenecks.

Seventeen MBConv blocks in seven groups plus the stem conv and the final
1x1 expansion, totalling 52 conv layers and ~3.5M weights (Table III).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cnn.graph import CNNGraph
from repro.cnn.zoo.common import NetBuilder

#: (expansion factor, output channels, repeats, first stride) per group,
#: straight from the MobileNetV2 paper's Table 2.
MOBILENETV2_GROUPS: List[Tuple[int, int, int, int]] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _mbconv(
    net: NetBuilder,
    group: int,
    block: int,
    expansion: int,
    out_channels: int,
    stride: int,
) -> None:
    """Inverted residual: expand 1x1 (if expansion > 1), dw 3x3, project 1x1."""
    prefix = f"g{group}b{block}"
    entry = net.head
    in_channels = net.output_shape(entry).channels
    if expansion != 1:
        net.conv(in_channels * expansion, kernel=1, source=entry, name=f"{prefix}_expand")
    net.dwconv(kernel=3, stride=stride, name=f"{prefix}_dw")
    main = net.conv(out_channels, kernel=1, name=f"{prefix}_project")
    if stride == 1 and in_channels == out_channels:
        net.residual_add(main, entry, name=f"{prefix}_add")


def mobilenet_v2(input_size: int = 224, num_classes: int = 1000) -> CNNGraph:
    """MobileNetV2: 52 conv layers, ~3.5M weights."""
    net = NetBuilder("MobileNetV2", (input_size, input_size, 3))
    net.conv(32, kernel=3, stride=2, name="stem_conv")
    for group, (expansion, out_channels, repeats, first_stride) in enumerate(
        MOBILENETV2_GROUPS, start=1
    ):
        for block in range(1, repeats + 1):
            stride = first_stride if block == 1 else 1
            _mbconv(net, group, block, expansion, out_channels, stride)
    net.conv(1280, kernel=1, name="head_conv")
    net.global_pool(name="avg_pool")
    net.dense(num_classes, name="classifier")
    return net.build()
