"""ResNet-50 and ResNet-152 (He et al., CVPR 2016).

Bottleneck residual networks with stage block counts [3, 4, 6, 3] (ResNet-50)
and [3, 8, 36, 3] (ResNet-152). Conv layer counts match the paper's
Table III: 53 and 155 respectively (1 stem conv + 3 convs per bottleneck +
1 projection conv per stage).
"""

from __future__ import annotations

from typing import Sequence

from repro.cnn.graph import CNNGraph
from repro.cnn.zoo.common import NetBuilder


def _bottleneck_block(
    net: NetBuilder,
    stage: int,
    block: int,
    mid_channels: int,
    out_channels: int,
    stride: int,
    project: bool,
) -> None:
    """One bottleneck: 1x1 reduce, 3x3, 1x1 expand, plus identity/projection."""
    prefix = f"s{stage}b{block}"
    entry = net.head
    net.conv(mid_channels, kernel=1, stride=stride, source=entry, name=f"{prefix}_c1")
    net.conv(mid_channels, kernel=3, name=f"{prefix}_c2")
    main = net.conv(out_channels, kernel=1, name=f"{prefix}_c3")
    if project:
        skip = net.conv(
            out_channels, kernel=1, stride=stride, source=entry, name=f"{prefix}_proj"
        )
    else:
        skip = entry
    net.residual_add(main, skip, name=f"{prefix}_add")


def build_resnet(
    blocks_per_stage: Sequence[int],
    name: str,
    input_size: int = 224,
    num_classes: int = 1000,
) -> CNNGraph:
    """Construct a bottleneck ResNet with the given per-stage block counts."""
    net = NetBuilder(name, (input_size, input_size, 3))
    net.conv(64, kernel=7, stride=2, name="stem_conv")
    net.pool(size=3, stride=2, mode="max", name="stem_pool")
    mid = 64
    for stage, num_blocks in enumerate(blocks_per_stage, start=1):
        out_channels = mid * 4
        for block in range(1, num_blocks + 1):
            first = block == 1
            stride = 2 if (first and stage > 1) else 1
            _bottleneck_block(
                net,
                stage=stage,
                block=block,
                mid_channels=mid,
                out_channels=out_channels,
                stride=stride,
                project=first,
            )
        mid *= 2
    net.global_pool(name="avg_pool")
    net.dense(num_classes, name="classifier")
    return net.build()


def resnet50(input_size: int = 224) -> CNNGraph:
    """ResNet-50: 53 conv layers, ~25.6M weights."""
    return build_resnet([3, 4, 6, 3], "ResNet50", input_size=input_size)


def resnet152(input_size: int = 224) -> CNNGraph:
    """ResNet-152: 155 conv layers, ~60.2M weights."""
    return build_resnet([3, 8, 36, 3], "ResNet152", input_size=input_size)
