"""Xception (Chollet, CVPR 2017): depthwise-separable "extreme Inception".

Entry flow (2 stem convs + 3 residual separable modules), middle flow
(8 residual modules of 3 separable convs), exit flow (1 residual module +
2 separable convs). Each separable convolution counts as two conv layers
(depthwise + pointwise), giving 74 conv layers and ~22.9M weights as in the
paper's Table III.
"""

from __future__ import annotations

from repro.cnn.graph import CNNGraph
from repro.cnn.layers import Padding
from repro.cnn.zoo.common import NetBuilder


def _entry_module(net: NetBuilder, index: int, filters: int) -> None:
    """Entry-flow module: two separable convs, strided pool, 1x1 skip."""
    prefix = f"entry{index}"
    entry = net.head
    net.separable(filters, name=f"{prefix}_sep1", source=entry)
    net.separable(filters, name=f"{prefix}_sep2")
    net.pool(size=3, stride=2, padding=Padding.SAME, mode="max", name=f"{prefix}_pool")
    main = net.head
    skip = net.conv(filters, kernel=1, stride=2, source=entry, name=f"{prefix}_skip")
    net.residual_add(main, skip, name=f"{prefix}_add")


def _middle_module(net: NetBuilder, index: int, filters: int) -> None:
    """Middle-flow module: three separable convs with an identity skip."""
    prefix = f"middle{index}"
    entry = net.head
    net.separable(filters, name=f"{prefix}_sep1", source=entry)
    net.separable(filters, name=f"{prefix}_sep2")
    main = net.separable(filters, name=f"{prefix}_sep3")
    net.residual_add(main, entry, name=f"{prefix}_add")


def xception(input_size: int = 224, num_classes: int = 1000) -> CNNGraph:
    """Xception: 74 conv layers, ~22.9M weights.

    The default input resolution is 224x224 — the FPGA-accelerator
    evaluation convention shared by the paper's other workloads — rather
    than the 299x299 of the original classification setup; weight counts
    (Table III) are unaffected.
    """
    net = NetBuilder("Xception", (input_size, input_size, 3))
    # Entry flow stem.
    net.conv(32, kernel=3, stride=2, name="stem_conv1")
    net.conv(64, kernel=3, name="stem_conv2")
    for index, filters in enumerate((128, 256, 728), start=1):
        _entry_module(net, index, filters)
    # Middle flow.
    for index in range(1, 9):
        _middle_module(net, index, 728)
    # Exit flow residual module.
    entry = net.head
    net.separable(728, name="exit_sep1", source=entry)
    net.separable(1024, name="exit_sep2")
    net.pool(size=3, stride=2, padding=Padding.SAME, mode="max", name="exit_pool")
    main = net.head
    skip = net.conv(1024, kernel=1, stride=2, source=entry, name="exit_skip")
    net.residual_add(main, skip, name="exit_add")
    # Exit flow tail.
    net.separable(1536, name="tail_sep1")
    net.separable(2048, name="tail_sep2")
    net.global_pool(name="avg_pool")
    net.dense(num_classes, name="classifier")
    return net.build()
