"""DenseNet-121 (Huang et al., CVPR 2017): densely connected blocks.

Dense blocks of [6, 12, 24, 16] layers (each a 1x1 bottleneck + 3x3 conv)
joined by channel concatenation, with 1x1 transition convs between blocks:
1 + 2*(6+12+24+16) + 3 = 120 conv layers and ~8M weights (Table III).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cnn.graph import CNNGraph
from repro.cnn.zoo.common import NetBuilder

GROWTH_RATE = 32
DENSENET121_BLOCKS = [6, 12, 24, 16]


def _dense_layer(net: NetBuilder, block: int, layer: int) -> str:
    """One dense layer: 1x1 bottleneck to 4k channels, then 3x3 to k channels."""
    prefix = f"d{block}l{layer}"
    entry = net.head
    net.conv(4 * GROWTH_RATE, kernel=1, source=entry, name=f"{prefix}_bottleneck")
    fresh = net.conv(GROWTH_RATE, kernel=3, name=f"{prefix}_conv")
    return net.concat([entry, fresh], name=f"{prefix}_concat")


def _transition(net: NetBuilder, index: int) -> None:
    """Transition: 1x1 conv halving channels, then 2x2 average pool."""
    channels = net.output_shape().channels
    net.conv(channels // 2, kernel=1, name=f"trans{index}_conv")
    net.pool(size=2, stride=2, mode="avg", name=f"trans{index}_pool")


def build_densenet(
    blocks: Sequence[int], name: str, input_size: int = 224, num_classes: int = 1000
) -> CNNGraph:
    """Construct a DenseNet with the given dense-block sizes."""
    net = NetBuilder(name, (input_size, input_size, 3))
    net.conv(2 * GROWTH_RATE, kernel=7, stride=2, name="stem_conv")
    net.pool(size=3, stride=2, mode="max", name="stem_pool")
    for block_index, num_layers in enumerate(blocks, start=1):
        for layer_index in range(1, num_layers + 1):
            _dense_layer(net, block_index, layer_index)
        if block_index < len(blocks):
            _transition(net, block_index)
    net.global_pool(name="avg_pool")
    net.dense(num_classes, name="classifier")
    return net.build()


def densenet121(input_size: int = 224) -> CNNGraph:
    """DenseNet-121: 120 conv layers, ~8M weights."""
    return build_densenet(DENSENET121_BLOCKS, "DenseNet121", input_size=input_size)
