"""CNN DAG representation and the conv-layer view the cost model consumes.

A :class:`CNNGraph` is a directed acyclic graph of :class:`~repro.cnn.layers.Layer`
nodes. The MCCM equations operate on the topologically ordered convolutional
layers only (Section II-B: convolutions are >90% of CNN operations), so the
graph exposes :meth:`CNNGraph.conv_specs`, a flat list of
:class:`ConvSpec` records carrying exactly the quantities the equations need.

Residual connections matter to the buffer model: Eq. 4's note says a layer's
feature maps "must account for multiple copies of the FMs in case a layer has
residual connections". The graph derives each conv layer's live-copy
multiplier from its out-degree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cnn.layers import Layer, LayerKind, TensorShape
from repro.utils.errors import ShapeError


@dataclass(frozen=True)
class ConvSpec:
    """Flat record of one convolutional layer for the analytical model.

    Attributes mirror the six disjoint loop dimensions of Eq. 1 plus the
    element counts used by the buffer and access models. All counts are in
    scalar elements (not bytes); the hardware description supplies the
    datatype width.
    """

    index: int
    name: str
    kind: LayerKind
    filters: int
    channels: int
    out_height: int
    out_width: int
    kernel_height: int
    kernel_width: int
    ifm_elements: int
    ofm_elements: int
    weight_count: int
    macs: int
    fms_copies: int = 1

    def __post_init__(self) -> None:
        positive_fields = (
            "filters",
            "channels",
            "out_height",
            "out_width",
            "kernel_height",
            "kernel_width",
            "ifm_elements",
            "ofm_elements",
            "weight_count",
            "macs",
            "fms_copies",
        )
        for field_name in positive_fields:
            value = getattr(self, field_name)
            if value <= 0:
                raise ShapeError(f"{self.name}: {field_name} must be positive, got {value}")

    @property
    def loop_dimensions(self) -> Tuple[int, int, int, int, int, int]:
        """The six disjoint dimensions ``(K, C, H, W, R, S)`` of Eq. 1."""
        return (
            self.filters,
            self.channels,
            self.out_height,
            self.out_width,
            self.kernel_height,
            self.kernel_width,
        )

    @property
    def fms_elements(self) -> int:
        """IFM plus OFM elements, with residual copies counted (Eq. 4)."""
        return self.ifm_elements + self.ofm_elements * self.fms_copies


class CNNGraph:
    """A named DAG of layers with shape validation and conv extraction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._layers: Dict[str, Layer] = {}
        self._predecessors: Dict[str, List[str]] = {}
        self._successors: Dict[str, List[str]] = {}
        self._order: List[str] = []

    # -- construction --------------------------------------------------------
    def add(self, layer: Layer, inputs: Sequence[str] = ()) -> Layer:
        """Add ``layer`` fed by the named predecessor layers.

        The first layer added must have no inputs (the network input). Shape
        consistency between the layer's declared ``input_shape`` and its
        primary predecessor's output shape is enforced here, so a graph that
        builds successfully always has coherent shapes.
        """
        if layer.name in self._layers:
            raise ShapeError(f"duplicate layer name: {layer.name}")
        for parent in inputs:
            if parent not in self._layers:
                raise ShapeError(f"{layer.name}: unknown input layer {parent!r}")
        if not inputs and self._layers:
            raise ShapeError(f"{layer.name}: only the first layer may have no inputs")
        if inputs:
            self._check_input_shape(layer, inputs)
        self._layers[layer.name] = layer
        self._predecessors[layer.name] = list(inputs)
        self._successors[layer.name] = []
        for parent in inputs:
            self._successors[parent].append(layer.name)
        self._order.append(layer.name)
        return layer

    def _check_input_shape(self, layer: Layer, inputs: Sequence[str]) -> None:
        primary = self._layers[inputs[0]].output_shape
        if layer.kind is LayerKind.CONCAT:
            total_channels = sum(self._layers[p].output_shape.channels for p in inputs)
            expected = primary.with_channels(primary.channels)
            if layer.input_shape != expected:
                raise ShapeError(
                    f"{layer.name}: concat primary input shape {layer.input_shape} "
                    f"!= predecessor output {expected}"
                )
            declared_total = layer.output_shape.channels
            if declared_total != total_channels:
                raise ShapeError(
                    f"{layer.name}: concat output channels {declared_total} != "
                    f"sum of predecessor channels {total_channels}"
                )
            return
        if layer.kind is LayerKind.ADD:
            shapes = {str(self._layers[p].output_shape) for p in inputs}
            if len(shapes) != 1:
                raise ShapeError(f"{layer.name}: add inputs disagree on shape: {shapes}")
        if layer.input_shape != primary:
            raise ShapeError(
                f"{layer.name}: declared input shape {layer.input_shape} does not match "
                f"predecessor {inputs[0]!r} output {primary}"
            )

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._layers)

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def layer(self, name: str) -> Layer:
        return self._layers[name]

    def predecessors(self, name: str) -> List[str]:
        return list(self._predecessors[name])

    def successors(self, name: str) -> List[str]:
        return list(self._successors[name])

    def topological_order(self) -> List[Layer]:
        """Layers in a valid topological order (insertion order is one)."""
        return [self._layers[name] for name in self._order]

    @property
    def input_shape(self) -> TensorShape:
        if not self._order:
            raise ShapeError("graph is empty")
        return self._layers[self._order[0]].input_shape

    def conv_layers(self) -> List[Layer]:
        """Convolutional layers in topological order."""
        return [layer for layer in self.topological_order() if layer.kind.is_conv]

    def conv_specs(self) -> List[ConvSpec]:
        """The flat conv-layer records consumed by the cost model."""
        self._assign_residual_copies()
        specs: List[ConvSpec] = []
        for index, layer in enumerate(self.conv_layers()):
            specs.append(
                ConvSpec(
                    index=index,
                    name=layer.name,
                    kind=layer.kind,
                    filters=layer.loop_filters,  # type: ignore[attr-defined]
                    channels=layer.loop_channels,  # type: ignore[attr-defined]
                    out_height=layer.loop_out_height,  # type: ignore[attr-defined]
                    out_width=layer.loop_out_width,  # type: ignore[attr-defined]
                    kernel_height=layer.loop_kernel_height,  # type: ignore[attr-defined]
                    kernel_width=layer.loop_kernel_width,  # type: ignore[attr-defined]
                    ifm_elements=layer.ifm_elements,
                    ofm_elements=layer.ofm_elements,
                    weight_count=layer.weight_count,
                    macs=layer.macs,
                    fms_copies=layer.residual_copies,
                )
            )
        return specs

    def _assign_residual_copies(self) -> None:
        """Set each conv layer's live-FM multiplier from its fan-out.

        A conv whose OFM feeds more than one consumer (e.g. both the next
        conv and a downstream Add) must keep that many copies live, which is
        exactly the Eq. 4 residual-copies provision.
        """
        for name, layer in self._layers.items():
            if layer.kind.is_conv:
                layer.residual_copies = max(1, len(self._successors[name]))

    # -- aggregate statistics ---------------------------------------------------
    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.topological_order())

    @property
    def conv_macs(self) -> int:
        return sum(layer.macs for layer in self.conv_layers())

    @property
    def total_weights(self) -> int:
        return sum(layer.weight_count for layer in self.topological_order())

    @property
    def conv_weights(self) -> int:
        return sum(layer.weight_count for layer in self.conv_layers())

    @property
    def num_conv_layers(self) -> int:
        return len(self.conv_layers())

    def validate(self) -> None:
        """Re-check DAG invariants: acyclicity and shape coherence."""
        seen: Dict[str, int] = {name: 0 for name in self._layers}
        for name in self._order:
            for parent in self._predecessors[name]:
                if self._order.index(parent) >= self._order.index(name):
                    raise ShapeError(f"edge {parent} -> {name} violates topological order")
                seen[parent] += 1
        # Every non-terminal layer should feed something.
        terminals = [n for n, succs in self._successors.items() if not succs]
        if len(terminals) != 1:
            raise ShapeError(f"expected exactly one output layer, found {terminals}")

    def summary(self) -> str:
        """Multi-line human-readable summary table."""
        lines = [f"Model: {self.name}  ({self.num_conv_layers} conv layers)"]
        header = f"{'layer':<28}{'kind':<10}{'output':<16}{'weights':>12}{'MACs':>16}"
        lines.append(header)
        lines.append("-" * len(header))
        for layer in self.topological_order():
            lines.append(
                f"{layer.name:<28}{layer.kind.value:<10}{str(layer.output_shape):<16}"
                f"{layer.weight_count:>12,}{layer.macs:>16,}"
            )
        lines.append("-" * len(header))
        lines.append(f"total weights: {self.total_weights:,}  total MACs: {self.total_macs:,}")
        return "\n".join(lines)
