"""End-to-end evaluation reports (Use case 1: Tables I and V).

* :func:`normalized_comparison` — Table I: each metric normalized to the
  best accelerator in that metric.
* :func:`best_instances` / :func:`winners_with_ties` — Table V: per metric,
  the architecture (and CE count) achieving the best result, with results
  within 10% of the best counted as ties "to account for estimation
  errors".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.cost.results import CostReport, metric_is_higher_better

#: Table V tie threshold: results within 10% of the best count as a tie.
TIE_THRESHOLD = 0.10

#: The four headline metrics in the paper's table order.
HEADLINE_METRICS: Tuple[str, ...] = ("latency", "throughput", "access", "buffers")


def architecture_of(report: CostReport) -> str:
    """Architecture family name, stripped of the CE-count suffix."""
    return report.accelerator_name.rsplit("-", 1)[0]


def ce_count_of(report: CostReport) -> int:
    """CE count parsed from the instance name suffix."""
    tail = report.accelerator_name.rsplit("-", 1)[-1]
    try:
        return int(tail)
    except ValueError:
        return sum(1 for _ in report.blocks)


def _metric_value(report: CostReport, metric: str) -> float:
    return report.metric(metric)


def best_instances(
    reports: Sequence[CostReport], metric: str
) -> List[CostReport]:
    """Reports achieving the best value of ``metric``, best first."""
    if not reports:
        return []
    higher = metric_is_higher_better(metric)
    return sorted(
        reports,
        key=lambda report: _metric_value(report, metric),
        reverse=higher,
    )


@dataclass(frozen=True)
class MetricWinners:
    """Table V cell: architectures tied for best in one metric."""

    metric: str
    best_value: float
    winners: Tuple[Tuple[str, int], ...]  # (architecture, ce_count)

    def architectures(self) -> List[str]:
        seen: List[str] = []
        for architecture, _count in self.winners:
            if architecture not in seen:
                seen.append(architecture)
        return seen


def winners_with_ties(
    reports: Sequence[CostReport], metric: str, tie_threshold: float = TIE_THRESHOLD
) -> MetricWinners:
    """Best accelerator(s) for ``metric`` with the paper's 10% tie rule.

    For each architecture family only its best instance competes; a family
    whose best is within ``tie_threshold`` of the overall best ties.
    """
    ranked = best_instances(reports, metric)
    if not ranked:
        raise ValueError("no reports to rank")
    higher = metric_is_higher_better(metric)
    best_value = _metric_value(ranked[0], metric)

    family_best: Dict[str, CostReport] = {}
    for report in ranked:
        family = architecture_of(report)
        if family not in family_best:
            family_best[family] = report

    winners: List[Tuple[str, int]] = []
    for family, report in family_best.items():
        value = _metric_value(report, metric)
        if higher:
            tied = value >= best_value * (1.0 - tie_threshold)
        else:
            tied = value <= best_value * (1.0 + tie_threshold)
        if tied:
            winners.append((family, ce_count_of(report)))
    return MetricWinners(metric=metric, best_value=best_value, winners=tuple(winners))


def normalized_comparison(
    reports: Sequence[CostReport], metrics: Sequence[str] = ("latency", "buffers", "access")
) -> Dict[str, Dict[str, float]]:
    """Table I: per accelerator, each metric normalized to the metric's best.

    All three Table I metrics are costs, so every value is >= 1.0 and the
    best accelerator in a metric scores exactly 1.0.
    """
    table: Dict[str, Dict[str, float]] = {}
    for metric in metrics:
        best = min(_metric_value(report, metric) for report in reports)
        for report in reports:
            row = table.setdefault(report.accelerator_name, {})
            row[metric] = _metric_value(report, metric) / best if best else float("inf")
    return table


def comparison_table(reports: Sequence[CostReport]) -> str:
    """Render the Table I layout as text."""
    table = normalized_comparison(reports)
    metrics = ("latency", "buffers", "access")
    header = f"{'accelerator':<20}" + "".join(f"{m:>12}" for m in metrics)
    lines = [header, "-" * len(header)]
    for name, row in table.items():
        lines.append(f"{name:<20}" + "".join(f"{row[m]:>12.2f}" for m in metrics))
    return "\n".join(lines)


#: Unambiguous short names for the Table V cells.
_SHORT_NAMES = {"Segmented": "Seg", "SegmentedRR": "SegRR", "Hybrid": "Hyb"}


def short_architecture_name(architecture: str) -> str:
    """Collision-free abbreviation used in rendered tables."""
    return _SHORT_NAMES.get(architecture, architecture[:6])


def best_architecture_table(
    sweeps: Dict[Tuple[str, str], Sequence[CostReport]],
) -> str:
    """Render the Table V layout: (board, model) columns x metric rows.

    ``sweeps`` maps ``(board, model)`` to that pair's sweep of cost reports.
    Each cell lists the tied winners as ``Arch(ce)`` entries.
    """
    columns = list(sweeps)
    lines = []
    header = f"{'metric':<12}" + "".join(
        f"{board[:6] + '/' + model[:6]:>26}" for board, model in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for metric in HEADLINE_METRICS:
        row = f"{metric:<12}"
        for key in columns:
            winners = winners_with_ties(list(sweeps[key]), metric)
            cell = ",".join(
                f"{short_architecture_name(arch)}({count})"
                for arch, count in winners.winners
            )
            row += f"{cell:>26}"
        lines.append(row)
    return "\n".join(lines)
