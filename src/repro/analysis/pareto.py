"""Pareto-front utilities for metric trade-off scatter plots (Figs. 5, 8, 10).

The figures plot one benefit metric (throughput) against one cost metric
(off-chip accesses or buffers); the interesting designs sit on the
bottom-right frontier: more throughput, less cost.

Beyond membership tests, this module carries the front *quality* metrics
the campaign engine reports: NSGA-II crowding distance (how evenly a front
covers the trade-off curve) and the 2-D hypervolume indicator (how much
benefit-cost area a front dominates — the standard scalar for comparing
multi-objective search runs), plus a CSV export for downstream plotting.
"""

from __future__ import annotations

import csv
import io
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.cost.results import CostReport

T = TypeVar("T")


def pareto_front(
    items: Sequence[T],
    benefit: Callable[[T], float],
    cost: Callable[[T], float],
) -> List[T]:
    """Items not dominated by any other (>= benefit and <= cost, one strict).

    Returned sorted by ascending cost.
    """
    front: List[T] = []
    for candidate in items:
        dominated = False
        for other in items:
            if other is candidate:
                continue
            better_benefit = benefit(other) >= benefit(candidate)
            better_cost = cost(other) <= cost(candidate)
            strictly = benefit(other) > benefit(candidate) or cost(other) < cost(candidate)
            if better_benefit and better_cost and strictly:
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return sorted(front, key=cost)


def report_front(
    reports: Sequence[CostReport], cost_metric: str = "buffers"
) -> List[CostReport]:
    """Throughput-vs-cost Pareto front over cost reports.

    ``cost_metric`` is ``"buffers"`` (Figs. 8, 10) or ``"access"`` (Fig. 5).
    """
    return pareto_front(
        reports,
        benefit=lambda report: report.throughput_fps,
        cost=lambda report: report.metric(cost_metric),
    )


def scatter_points(
    reports: Sequence[CostReport], cost_metric: str = "buffers"
) -> List[Tuple[str, float, float]]:
    """(name, throughput FPS, cost) triples for plotting/tabulation."""
    points = []
    for report in reports:
        cost = report.metric(cost_metric)
        if cost_metric in ("buffers", "buffer", "access", "accesses"):
            cost = cost / 2**20  # report in MiB like the figures
        points.append((report.accelerator_name, report.throughput_fps, cost))
    return points


def crowding_distance_vectors(vectors: Sequence[Sequence[float]]) -> List[float]:
    """NSGA-II crowding distance over raw objective vectors (any axis count).

    Boundary points along any axis get infinity; interior points the sum
    of normalized neighbour gaps per axis. Larger means the point sits in
    a sparser region and is more worth keeping. Ties sort by index, so the
    result is deterministic. The single shared implementation behind both
    :func:`crowding_distance` and the evolutionary selection in
    :mod:`repro.dse.evolve`.
    """
    n = len(vectors)
    if n <= 2:
        return [float("inf")] * n
    distances = [0.0] * n
    for axis in range(len(vectors[0])):
        values = [vector[axis] for vector in vectors]
        ordered = sorted(range(n), key=lambda i: (values[i], i))
        distances[ordered[0]] = float("inf")
        distances[ordered[-1]] = float("inf")
        span = values[ordered[-1]] - values[ordered[0]]
        if span <= 0.0:
            continue
        for position in range(1, n - 1):
            index = ordered[position]
            if distances[index] == float("inf"):
                continue
            gap = values[ordered[position + 1]] - values[ordered[position - 1]]
            distances[index] += gap / span
    return distances


def crowding_distance(
    items: Sequence[T],
    benefit: Callable[[T], float],
    cost: Callable[[T], float],
) -> List[float]:
    """NSGA-II crowding distance of each item (aligned with ``items``)."""
    return crowding_distance_vectors([(benefit(item), cost(item)) for item in items])


def hypervolume(
    items: Sequence[T],
    benefit: Callable[[T], float],
    cost: Callable[[T], float],
    reference: Optional[Tuple[float, float]] = None,
    *,
    assume_front: bool = False,
) -> float:
    """2-D hypervolume: benefit-cost area dominated by the front of ``items``.

    ``reference`` is a ``(benefit, cost)`` point every counted item must
    dominate (at least its benefit, at most its cost); items that do not
    dominate it contribute nothing. Defaults to ``(0, max cost)``, under
    which the cheapest design anchors the area and the most expensive
    front point contributes only through its benefit. Deterministic for a
    fixed item set — the campaign engine uses it to compare search runs.

    ``assume_front=True`` skips the O(n^2) dominance sweep for callers
    whose items are already mutually non-dominated (e.g. a Pareto
    archive); the staircase's skip rule ignores dominated points anyway,
    so the flag only changes the cost, not the result.
    """
    if not items:
        return 0.0
    if assume_front:
        front = sorted(items, key=cost)
    else:
        front = pareto_front(items, benefit, cost)
    if reference is None:
        reference = (0.0, max(cost(item) for item in front))
    ref_benefit, ref_cost = reference
    area = 0.0
    previous_benefit = ref_benefit
    # pareto_front sorts by ascending cost, so benefits ascend too; each
    # point adds the rectangle between its benefit rise and the reference
    # cost line.
    for item in front:
        b, c = benefit(item), cost(item)
        if c > ref_cost or b <= previous_benefit:
            continue
        area += (ref_cost - c) * (b - previous_benefit)
        previous_benefit = b
    return area


#: Columns of :func:`front_to_csv`, in order.
FRONT_CSV_COLUMNS = [
    "label",
    "accelerator",
    "model",
    "board",
    "notation",
    "throughput_fps",
    "cost",
    "cost_metric",
]


def front_to_csv(
    entries: Sequence[Tuple[str, CostReport]], cost_metric: str = "buffers"
) -> str:
    """A labelled Pareto front as CSV (byte-for-byte stable for equal fronts).

    ``entries`` are ``(label, report)`` pairs — e.g. a campaign cell name
    plus each front design's report. Byte-denominated cost metrics are
    reported in MiB like the figures.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(FRONT_CSV_COLUMNS)
    for label, report in entries:
        value = report.metric(cost_metric)
        if cost_metric in ("buffers", "buffer", "access", "accesses"):
            value = value / 2**20
        writer.writerow(
            [
                label,
                report.accelerator_name,
                report.model_name,
                report.board_name,
                report.notation,
                repr(report.throughput_fps),
                repr(value),
                cost_metric,
            ]
        )
    return buffer.getvalue()


def dominates(
    challenger: CostReport, incumbent: CostReport, cost_metric: str = "buffers"
) -> bool:
    """Whether ``challenger`` Pareto-dominates ``incumbent``."""
    better_benefit = challenger.throughput_fps >= incumbent.throughput_fps
    better_cost = challenger.metric(cost_metric) <= incumbent.metric(cost_metric)
    strictly = (
        challenger.throughput_fps > incumbent.throughput_fps
        or challenger.metric(cost_metric) < incumbent.metric(cost_metric)
    )
    return better_benefit and better_cost and strictly
