"""Pareto-front utilities for metric trade-off scatter plots (Figs. 5, 8, 10).

The figures plot one benefit metric (throughput) against one cost metric
(off-chip accesses or buffers); the interesting designs sit on the
bottom-right frontier: more throughput, less cost.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

from repro.core.cost.results import CostReport

T = TypeVar("T")


def pareto_front(
    items: Sequence[T],
    benefit: Callable[[T], float],
    cost: Callable[[T], float],
) -> List[T]:
    """Items not dominated by any other (>= benefit and <= cost, one strict).

    Returned sorted by ascending cost.
    """
    front: List[T] = []
    for candidate in items:
        dominated = False
        for other in items:
            if other is candidate:
                continue
            better_benefit = benefit(other) >= benefit(candidate)
            better_cost = cost(other) <= cost(candidate)
            strictly = benefit(other) > benefit(candidate) or cost(other) < cost(candidate)
            if better_benefit and better_cost and strictly:
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return sorted(front, key=cost)


def report_front(
    reports: Sequence[CostReport], cost_metric: str = "buffers"
) -> List[CostReport]:
    """Throughput-vs-cost Pareto front over cost reports.

    ``cost_metric`` is ``"buffers"`` (Figs. 8, 10) or ``"access"`` (Fig. 5).
    """
    return pareto_front(
        reports,
        benefit=lambda report: report.throughput_fps,
        cost=lambda report: report.metric(cost_metric),
    )


def scatter_points(
    reports: Sequence[CostReport], cost_metric: str = "buffers"
) -> List[Tuple[str, float, float]]:
    """(name, throughput FPS, cost) triples for plotting/tabulation."""
    points = []
    for report in reports:
        cost = report.metric(cost_metric)
        if cost_metric in ("buffers", "buffer", "access", "accesses"):
            cost = cost / 2**20  # report in MiB like the figures
        points.append((report.accelerator_name, report.throughput_fps, cost))
    return points


def dominates(
    challenger: CostReport, incumbent: CostReport, cost_metric: str = "buffers"
) -> bool:
    """Whether ``challenger`` Pareto-dominates ``incumbent``."""
    better_benefit = challenger.throughput_fps >= incumbent.throughput_fps
    better_cost = challenger.metric(cost_metric) <= incumbent.metric(cost_metric)
    strictly = (
        challenger.throughput_fps > incumbent.throughput_fps
        or challenger.metric(cost_metric) < incumbent.metric(cost_metric)
    )
    return better_benefit and better_cost and strictly
