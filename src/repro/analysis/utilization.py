"""Per-segment PE underutilization and buffer shares (Use case 3, Fig. 9).

Fig. 9a normalizes each segment's buffer requirement to one accelerator's
total; Fig. 9b normalizes each segment's PE underutilization to the minimum
underutilization across the compared accelerators. Together they expose
*where* an architecture's bottleneck lives, guiding custom designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.cost.results import CostReport


@dataclass(frozen=True)
class SegmentUtilization:
    """One segment's PE utilization facts."""

    index: int
    label: str
    utilization: float
    underutilization: float
    pe_count: int


def per_segment_utilization(report: CostReport) -> List[SegmentUtilization]:
    """Utilization profile across an accelerator's segments."""
    return [
        SegmentUtilization(
            index=segment.index,
            label=segment.label,
            utilization=segment.utilization,
            underutilization=segment.underutilization,
            pe_count=segment.pe_count,
        )
        for segment in report.segments
    ]


def normalized_buffer_shares(report: CostReport) -> List[float]:
    """Fig. 9a: per-segment buffer requirement over the accelerator total."""
    totals = [segment.buffer_requirement_bytes for segment in report.segments]
    denominator = sum(totals)
    if denominator <= 0:
        return [0.0 for _ in totals]
    return [value / denominator for value in totals]


def normalized_underutilization(
    reports: Sequence[CostReport],
) -> List[List[float]]:
    """Fig. 9b: per-segment underutilization normalized to the global min.

    The minimum is taken over every segment of every compared accelerator,
    so a value of 1.0 marks the best-utilized segment anywhere and larger
    values show how many times worse a segment is.
    """
    all_values = [
        segment.underutilization for report in reports for segment in report.segments
    ]
    floor = min((value for value in all_values if value > 0), default=1.0)
    result: List[List[float]] = []
    for report in reports:
        result.append(
            [max(segment.underutilization, 0.0) / floor for segment in report.segments]
        )
    return result


def slowest_segment(report: CostReport) -> Tuple[int, float]:
    """Index and wall-cycles of the segment bounding a coarse pipeline.

    "their throughput is determined by the slowest segment execution time"
    (Use case 3 discussion).
    """
    segments = report.segments
    worst = max(range(len(segments)), key=lambda i: segments[i].time_cycles)
    return worst, segments[worst].time_cycles
