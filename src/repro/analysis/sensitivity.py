"""Resource sensitivity analysis.

Table V's central observation is that the best architecture changes with
the resource budget. This module quantifies that: it rescales one board
resource at a time (PEs, BRAM, off-chip bandwidth), re-evaluates an
architecture, and reports how each headline metric responds — exposing
whether a design is compute-, memory-capacity-, or bandwidth-limited.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple, Union

from repro.cnn.graph import CNNGraph
from repro.core.builder import MultipleCEBuilder
from repro.core.cost.model import default_model
from repro.core.cost.results import CostReport
from repro.core.notation import ArchitectureSpec
from repro.hw.boards import FPGABoard
from repro.hw.datatypes import DEFAULT_PRECISION, Precision
from repro.utils.errors import MCCMError

#: Board resources that can be scaled independently.
RESOURCES: Tuple[str, ...] = ("pes", "bram", "bandwidth")

#: Default scaling factors swept per resource.
DEFAULT_FACTORS: Tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0)


def scaled_board(board: FPGABoard, resource: str, factor: float) -> FPGABoard:
    """A copy of ``board`` with one resource scaled by ``factor``."""
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    if resource == "pes":
        return replace(
            board,
            name=f"{board.name}[pes x{factor:g}]",
            dsp_count=max(1, int(round(board.dsp_count * factor))),
        )
    if resource == "bram":
        return replace(
            board,
            name=f"{board.name}[bram x{factor:g}]",
            bram_bytes=max(1, int(round(board.bram_bytes * factor))),
        )
    if resource == "bandwidth":
        return replace(
            board,
            name=f"{board.name}[bw x{factor:g}]",
            bandwidth_gbps=board.bandwidth_gbps * factor,
        )
    raise KeyError(f"unknown resource {resource!r}; expected one of {RESOURCES}")


@dataclass(frozen=True)
class SensitivityPoint:
    """One (resource, factor) evaluation."""

    resource: str
    factor: float
    report: CostReport


@dataclass(frozen=True)
class SensitivityProfile:
    """Sweeps of one architecture across resource scalings."""

    architecture: str
    points: Tuple[SensitivityPoint, ...]

    def series(self, resource: str, metric: str) -> List[Tuple[float, float]]:
        """(factor, metric value) pairs for one resource, factor-sorted."""
        pairs = [
            (point.factor, point.report.metric(metric))
            for point in self.points
            if point.resource == resource
        ]
        return sorted(pairs)

    def elasticity(self, resource: str, metric: str) -> float:
        """Log-log slope of ``metric`` vs the resource factor.

        ~0 means the metric is insensitive to the resource; an elasticity
        of -1 for latency vs PEs means perfectly compute-bound scaling.
        """
        import math

        series = [
            (factor, value)
            for factor, value in self.series(resource, metric)
            if factor > 0 and value > 0
        ]
        if len(series) < 2:
            raise ValueError(f"not enough points for {resource}/{metric}")
        first_factor, first_value = series[0]
        last_factor, last_value = series[-1]
        return (math.log(last_value) - math.log(first_value)) / (
            math.log(last_factor) - math.log(first_factor)
        )

    def dominant_resource(self, metric: str = "latency") -> str:
        """The resource whose scaling moves ``metric`` most (by |elasticity|)."""
        best = None
        best_magnitude = -1.0
        for resource in RESOURCES:
            try:
                magnitude = abs(self.elasticity(resource, metric))
            except ValueError:
                continue
            if magnitude > best_magnitude:
                best = resource
                best_magnitude = magnitude
        if best is None:
            raise ValueError("profile has no usable series")
        return best

    def table(self, metric: str = "latency") -> str:
        header = f"{'resource':<12}" + "".join(
            f"x{factor:<9g}" for factor in sorted({p.factor for p in self.points})
        ) + "elasticity"
        lines = [f"{self.architecture} — {metric}", header, "-" * len(header)]
        for resource in RESOURCES:
            series = self.series(resource, metric)
            if not series:
                continue
            row = f"{resource:<12}" + "".join(f"{value:<10.4g}" for _f, value in series)
            try:
                row += f"{self.elasticity(resource, metric):10.2f}"
            except ValueError:
                row += f"{'n/a':>10}"
            lines.append(row)
        return "\n".join(lines)


def sensitivity_profile(
    graph: CNNGraph,
    board: FPGABoard,
    spec: ArchitectureSpec,
    factors: Sequence[float] = DEFAULT_FACTORS,
    resources: Sequence[str] = RESOURCES,
    precision: Precision = DEFAULT_PRECISION,
) -> SensitivityProfile:
    """Evaluate ``spec`` under independent scalings of each board resource.

    Infeasible points (e.g. fewer PEs than CEs) are skipped silently; the
    baseline factor 1.0 is always included per resource.
    """
    model = default_model()
    points: List[SensitivityPoint] = []
    for resource in resources:
        swept = sorted(set(factors) | {1.0})
        for factor in swept:
            try:
                builder = MultipleCEBuilder(
                    graph, scaled_board(board, resource, factor), precision
                )
                report = model.evaluate(builder.build(spec))
            except MCCMError:
                continue
            points.append(
                SensitivityPoint(resource=resource, factor=factor, report=report)
            )
    return SensitivityProfile(architecture=spec.name, points=tuple(points))
