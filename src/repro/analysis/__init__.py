"""Fine-grained analysis: bottlenecks, breakdowns, utilization, Pareto,
and the end-to-end evaluation tables."""

from repro.analysis.bottleneck import (
    BottleneckProfile,
    SegmentTiming,
    idle_fraction,
    profile_bottlenecks,
)
from repro.analysis.energy import (
    DEFAULT_CONSTANTS,
    EnergyBreakdown,
    EnergyConstants,
    energy_breakdown,
    energy_table,
    per_segment_energy,
)
from repro.analysis.breakdown import (
    AccessShares,
    access_breakdown,
    breakdown_table,
    per_segment_breakdown,
)
from repro.analysis.pareto import (
    dominates,
    pareto_front,
    report_front,
    scatter_points,
)
from repro.analysis.sensitivity import (
    RESOURCES,
    SensitivityPoint,
    SensitivityProfile,
    scaled_board,
    sensitivity_profile,
)
from repro.analysis.reporting import (
    HEADLINE_METRICS,
    TIE_THRESHOLD,
    MetricWinners,
    architecture_of,
    best_architecture_table,
    best_instances,
    ce_count_of,
    comparison_table,
    normalized_comparison,
    winners_with_ties,
)
from repro.analysis.utilization import (
    SegmentUtilization,
    normalized_buffer_shares,
    normalized_underutilization,
    per_segment_utilization,
    slowest_segment,
)

__all__ = [
    "BottleneckProfile",
    "SegmentTiming",
    "idle_fraction",
    "profile_bottlenecks",
    "DEFAULT_CONSTANTS",
    "EnergyBreakdown",
    "EnergyConstants",
    "energy_breakdown",
    "energy_table",
    "per_segment_energy",
    "AccessShares",
    "access_breakdown",
    "breakdown_table",
    "per_segment_breakdown",
    "dominates",
    "pareto_front",
    "report_front",
    "scatter_points",
    "HEADLINE_METRICS",
    "TIE_THRESHOLD",
    "MetricWinners",
    "architecture_of",
    "best_architecture_table",
    "best_instances",
    "ce_count_of",
    "comparison_table",
    "normalized_comparison",
    "winners_with_ties",
    "RESOURCES",
    "SensitivityPoint",
    "SensitivityProfile",
    "scaled_board",
    "sensitivity_profile",
    "SegmentUtilization",
    "normalized_buffer_shares",
    "normalized_underutilization",
    "per_segment_utilization",
    "slowest_segment",
]
