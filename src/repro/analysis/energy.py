"""First-order energy model (extension).

The paper's introduction names the three root causes of accelerator
inefficiency — PE underutilization, large on-chip buffers, and "the time
and *energy* costly off-chip access" — but evaluates time only. This
module closes that loop with a standard event-energy model (Horowitz,
ISSCC 2014 scaling, as used by Eyeriss/Timeloop-style estimators):

    E = MACs * E_mac + on-chip traffic * E_sram + off-chip traffic * E_dram
        + idle PE-cycles * E_static

The absolute picojoule constants are technology-dependent defaults;
comparisons across architectures on the same constants are the meaningful
output, exactly as with the paper's other metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cost.results import CostReport, SegmentCost


@dataclass(frozen=True)
class EnergyConstants:
    """Per-event energies in picojoules (16-bit datapath defaults)."""

    mac_pj: float = 0.9
    sram_per_byte_pj: float = 2.5
    dram_per_byte_pj: float = 120.0
    static_per_pe_cycle_pj: float = 0.02

    def __post_init__(self) -> None:
        for name in ("mac_pj", "sram_per_byte_pj", "dram_per_byte_pj",
                     "static_per_pe_cycle_pj"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


DEFAULT_CONSTANTS = EnergyConstants()


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one inference, split by event class (picojoules)."""

    compute_pj: float
    onchip_pj: float
    offchip_pj: float
    static_pj: float

    @property
    def total_pj(self) -> float:
        return self.compute_pj + self.onchip_pj + self.offchip_pj + self.static_pj

    @property
    def total_mj(self) -> float:
        return self.total_pj * 1e-9

    @property
    def offchip_fraction(self) -> float:
        total = self.total_pj
        return self.offchip_pj / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute_pj": self.compute_pj,
            "onchip_pj": self.onchip_pj,
            "offchip_pj": self.offchip_pj,
            "static_pj": self.static_pj,
            "total_pj": self.total_pj,
        }


def _segment_energy(
    segment: SegmentCost, activation_bytes: int, constants: EnergyConstants
) -> EnergyBreakdown:
    compute = segment.macs * constants.mac_pj
    # On-chip traffic: every MAC reads two operands and accumulates one
    # partial sum through the local buffers; a standard 3-events-per-MAC
    # SRAM approximation scaled by the data width.
    onchip_bytes = 3.0 * segment.macs * activation_bytes
    # Reuse discount: the fraction of operand reads served by registers
    # rather than SRAM; fixed at the common 80% register-hit approximation.
    onchip = 0.2 * onchip_bytes * constants.sram_per_byte_pj
    offchip = segment.accesses.total_bytes * constants.dram_per_byte_pj
    idle_pe_cycles = segment.time_cycles * segment.pe_count - segment.macs
    static = max(0.0, idle_pe_cycles) * constants.static_per_pe_cycle_pj
    return EnergyBreakdown(
        compute_pj=compute, onchip_pj=onchip, offchip_pj=offchip, static_pj=static
    )


def energy_breakdown(
    report: CostReport, constants: EnergyConstants = DEFAULT_CONSTANTS
) -> EnergyBreakdown:
    """Per-inference energy of an evaluated accelerator."""
    activation_bytes = 2  # the library's 16-bit default datapath
    totals = [0.0, 0.0, 0.0, 0.0]
    for segment in report.segments:
        breakdown = _segment_energy(segment, activation_bytes, constants)
        totals[0] += breakdown.compute_pj
        totals[1] += breakdown.onchip_pj
        totals[2] += breakdown.offchip_pj
        totals[3] += breakdown.static_pj
    return EnergyBreakdown(*totals)


def per_segment_energy(
    report: CostReport, constants: EnergyConstants = DEFAULT_CONSTANTS
) -> List[Tuple[str, EnergyBreakdown]]:
    """(segment label, energy) pairs, for bottleneck-style energy plots."""
    activation_bytes = 2
    return [
        (segment.label, _segment_energy(segment, activation_bytes, constants))
        for segment in report.segments
    ]


def energy_table(reports: List[CostReport],
                 constants: EnergyConstants = DEFAULT_CONSTANTS) -> str:
    """Render a comparison table: mJ/inference and the off-chip share."""
    header = f"{'accelerator':<20}{'mJ/inf':>10}{'off-chip %':>12}{'mJ compute':>12}"
    lines = [header, "-" * len(header)]
    for report in reports:
        breakdown = energy_breakdown(report, constants)
        lines.append(
            f"{report.accelerator_name:<20}{breakdown.total_mj:>10.2f}"
            f"{100 * breakdown.offchip_fraction:>11.1f}%"
            f"{breakdown.compute_pj * 1e-9:>12.2f}"
        )
    return "\n".join(lines)
