"""Fine-grained bottleneck analysis (Use case 2, Fig. 6).

Breaks an accelerator's execution into its segments and reports each
segment's compute and memory-access time as a fraction of the overall
execution, plus the aggregate CE idle share ("In 29% of the overall
execution time, CEs are idle, waiting for data").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.cost.results import CostReport, SegmentCost


@dataclass(frozen=True)
class SegmentTiming:
    """One Fig. 6 bar pair: a segment's compute and memory time shares."""

    index: int
    label: str
    compute_fraction: float
    memory_fraction: float

    @property
    def memory_bound(self) -> bool:
        return self.memory_fraction > self.compute_fraction


@dataclass(frozen=True)
class BottleneckProfile:
    """Per-segment timing profile of one accelerator."""

    accelerator_name: str
    segments: Tuple[SegmentTiming, ...]
    idle_fraction: float

    def memory_bound_segments(self) -> List[SegmentTiming]:
        """Segments where memory access time dominates (the compression
        candidates of the Use case 2 discussion)."""
        return [segment for segment in self.segments if segment.memory_bound]

    def table(self) -> str:
        header = f"{'segment':>8}{'compute %':>12}{'memory %':>12}{'bound':>10}"
        lines = [header, "-" * len(header)]
        for segment in self.segments:
            lines.append(
                f"{segment.index + 1:>8}{100 * segment.compute_fraction:>11.1f}%"
                f"{100 * segment.memory_fraction:>11.1f}%"
                f"{'memory' if segment.memory_bound else 'compute':>10}"
            )
        lines.append(f"CEs idle waiting for data: {100 * self.idle_fraction:.0f}% of execution")
        return "\n".join(lines)


def profile_bottlenecks(report: CostReport) -> BottleneckProfile:
    """Compute the Fig. 6 profile from a cost report.

    Fractions are normalized to the overall execution time (the sum of
    per-segment wall times), exactly as the figure's y-axis ("% Overall").
    """
    segments = report.segments
    overall = sum(segment.time_cycles for segment in segments)
    if overall <= 0:
        overall = 1.0
    timings = tuple(
        SegmentTiming(
            index=segment.index,
            label=segment.label,
            compute_fraction=segment.compute_cycles / overall,
            memory_fraction=segment.memory_cycles / overall,
        )
        for segment in segments
    )
    idle = sum(segment.idle_cycles for segment in segments) / overall
    return BottleneckProfile(
        accelerator_name=report.accelerator_name,
        segments=timings,
        idle_fraction=idle,
    )


def idle_fraction(report: CostReport) -> float:
    """Fraction of execution time CEs spend waiting for data."""
    return profile_bottlenecks(report).idle_fraction
