"""Off-chip access breakdown: weights vs feature maps (Use case 2, Fig. 7).

Identifies which data dominates an accelerator's off-chip traffic —
"while in SegmentedRR and Hybrid cases, compressing the weights would have
a considerable impact on the accesses, compressing FMs would be a pure
overhead".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.cost.results import CostReport


@dataclass(frozen=True)
class AccessShares:
    """Weights/FMs shares of one accelerator's off-chip traffic."""

    accelerator_name: str
    weight_bytes: int
    fm_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.fm_bytes

    @property
    def weight_fraction(self) -> float:
        return self.weight_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def fm_fraction(self) -> float:
        return self.fm_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def dominant(self) -> str:
        """Which data class compression should target first."""
        return "weights" if self.weight_bytes >= self.fm_bytes else "fms"


def access_breakdown(report: CostReport) -> AccessShares:
    """The Fig. 7 bar for one accelerator instance."""
    return AccessShares(
        accelerator_name=report.accelerator_name,
        weight_bytes=report.accesses.weight_bytes,
        fm_bytes=report.accesses.fm_bytes,
    )


def breakdown_table(reports: Sequence[CostReport]) -> str:
    """Render Fig. 7 as a text table for several accelerators."""
    header = f"{'accelerator':<20}{'weights %':>12}{'FMs %':>10}{'total MiB':>12}"
    lines = [header, "-" * len(header)]
    for report in reports:
        shares = access_breakdown(report)
        lines.append(
            f"{shares.accelerator_name:<20}{100 * shares.weight_fraction:>11.1f}%"
            f"{100 * shares.fm_fraction:>9.1f}%{shares.total_bytes / 2**20:>12.1f}"
        )
    return "\n".join(lines)


def per_segment_breakdown(report: CostReport) -> List[Tuple[str, int, int]]:
    """(label, weight bytes, FM bytes) per segment — the data that guides
    applying compression only to bottleneck segments' layers."""
    return [
        (segment.label, segment.accesses.weight_bytes, segment.accesses.fm_bytes)
        for segment in report.segments
    ]
