#!/usr/bin/env python3
"""Use case 3: design-space exploration of custom multiple-CE accelerators
(paper Fig. 10).

Samples the custom space (Hybrid-like pipelined first block followed by
Segmented-like single-CE blocks) for Xception on VCU110, refines the
sampled Pareto front with local search, and compares against the best
state-of-the-art baseline instances.

Run:  python examples/design_space_exploration.py [samples]
"""

import sys

from repro.analysis.reporting import architecture_of
from repro.api import resolve_board, resolve_model, sweep
from repro.dse import (
    CustomDesignSpace,
    DesignEvaluator,
    Objective,
    guided_search,
)


def main(samples: int = 800) -> None:
    model_name, board_name = "xception", "vcu110"
    graph = resolve_model(model_name)
    board = resolve_board(board_name)

    baseline = sweep(model_name, board_name)
    best_segmented = max(
        (r for r in baseline if architecture_of(r) == "Segmented"),
        key=lambda r: r.throughput_fps,
    )
    print(
        f"baseline: {best_segmented.accelerator_name} "
        f"{best_segmented.throughput_fps:.1f} FPS, "
        f"{best_segmented.buffer_requirement_mib:.2f} MiB buffers"
    )

    evaluator = DesignEvaluator(graph, board)
    space = CustomDesignSpace(graph.conv_specs())
    print(f"custom design space: {space.size():,} designs")

    objective = Objective.relative_to(best_segmented, cost_metric="buffers",
                                      throughput_weight=1.0, cost_weight=0.5)
    result = guided_search(evaluator, space, samples=samples,
                           objective=objective, seed=2025)
    print(
        f"evaluated {result.stats.evaluated} designs at "
        f"{result.stats.ms_per_design:.1f} ms/design"
    )

    print("\nPareto front (throughput vs buffers):")
    for design, report in result.front:
        print(
            f"  {report.accelerator_name:<22} {report.throughput_fps:7.1f} FPS  "
            f"{report.buffer_requirement_mib:7.2f} MiB   {report.notation}"
        )

    matching = [
        (design, report)
        for design, report in result.evaluated
        if report.throughput_fps >= best_segmented.throughput_fps
    ]
    if matching:
        thrifty = min(matching, key=lambda pair: pair[1].buffer_requirement_bytes)[1]
        reduction = 100 * (
            1 - thrifty.buffer_requirement_bytes / best_segmented.buffer_requirement_bytes
        )
        print(
            f"\ncustom matching baseline throughput with least buffers: "
            f"{thrifty.accelerator_name} ({thrifty.buffer_requirement_mib:.2f} MiB, "
            f"{reduction:.0f}% reduction)"
        )
    best = max(result.evaluated, key=lambda pair: pair[1].throughput_fps)[1]
    gain = 100 * (best.throughput_fps / best_segmented.throughput_fps - 1)
    print(
        f"best custom throughput: {best.accelerator_name} "
        f"({best.throughput_fps:.1f} FPS, {gain:+.0f}% vs baseline)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
