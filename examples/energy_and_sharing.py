#!/usr/bin/env python3
"""Extensions tour: CE sharing (Eq. 8), dual-engine tails, and energy.

Three features beyond the paper's baseline evaluation:

1. **A CE processing multiple segments** — the Eq. 8 general case, written
   directly in notation by reusing a CE id: one physical engine serves two
   layer ranges, halving its buffer at a throughput cost.
2. **The dual-engine Hybrid tail** (Section II-C's "two sub-CEs") for
   CNNs mixing depthwise and standard convolutions.
3. **Per-inference energy**, splitting MAC, on-chip, off-chip, and static
   energy — quantifying the "energy costly off-chip access" the paper's
   introduction motivates.

Run:  python examples/energy_and_sharing.py
"""

from repro.analysis.energy import energy_breakdown, energy_table
from repro.api import evaluate

MODEL = "mobilenetv2"
BOARD = "vcu108"


def main() -> None:
    shared = evaluate(MODEL, BOARD, "{L1-L20: CE1, L21-L40: CE2, L41-Last: CE1}")
    unshared = evaluate(MODEL, BOARD, "{L1-L20: CE1, L21-L40: CE2, L41-Last: CE3}")
    print("CE sharing (Eq. 8): one engine, two segments")
    for label, report in (("shared CE1", shared), ("separate CE3", unshared)):
        print(
            f"  {label:<14} buffers {report.buffer_requirement_mib:6.2f} MiB  "
            f"throughput {report.throughput_fps:6.1f} FPS  "
            f"latency {report.latency_ms:6.2f} ms"
        )
    saved = 1 - shared.buffer_requirement_bytes / unshared.buffer_requirement_bytes
    print(f"  => sharing saves {100 * saved:.0f}% buffers, trading throughput\n")

    plain = evaluate(MODEL, BOARD, "hybrid", ce_count=4)
    dual = evaluate(MODEL, BOARD, "hybriddual", ce_count=4)
    print("Dual-engine Hybrid tail (depthwise + standard sub-CEs)")
    for label, report in (("plain tail", plain), ("dual tail", dual)):
        print(
            f"  {label:<12} buffers {report.buffer_requirement_mib:6.2f} MiB  "
            f"latency {report.latency_ms:6.2f} ms"
        )
    print()

    print("Energy per inference (extension; ResNet50 on ZC706)")
    reports = [
        evaluate("resnet50", "zc706", "segmentedrr", ce_count=2),
        evaluate("resnet50", "zc706", "segmented", ce_count=7),
        evaluate("resnet50", "zc706", "hybrid", ce_count=9),
    ]
    print(energy_table(reports))
    worst = max(reports, key=lambda r: energy_breakdown(r).total_pj)
    breakdown = energy_breakdown(worst)
    print(
        f"\n{worst.accelerator_name} spends "
        f"{100 * breakdown.offchip_fraction:.0f}% of its energy on off-chip "
        f"access — the paper's motivation for minimizing accesses, in joules"
    )


if __name__ == "__main__":
    main()
