#!/usr/bin/env python3
"""Use case 1: end-to-end evaluation of state-of-the-art multiple-CE
architectures across metrics, CNNs, and boards (paper Tables I and V).

Sweeps the three architecture templates over 2-11 CEs for a selection of
CNN/board pairs, then prints:
  * a Table-I-style normalized comparison of each family's best-latency
    instance, and
  * a Table-V-style grid of best architecture (with the 10% tie rule)
    per metric.

Run:  python examples/end_to_end_evaluation.py
"""

from repro.analysis.reporting import (
    HEADLINE_METRICS,
    architecture_of,
    best_architecture_table,
    comparison_table,
    winners_with_ties,
)
from repro.api import sweep

BOARDS = ["zc706", "zcu102"]
MODELS = ["resnet50", "mobilenetv2"]


def table_one(board: str, model: str) -> None:
    reports = sweep(model, board)
    families = {}
    for report in reports:
        families.setdefault(architecture_of(report), []).append(report)
    representatives = [
        min(family, key=lambda r: r.latency_seconds) for family in families.values()
    ]
    print(f"\n--- {model} on {board}: normalized comparison (Table I style) ---")
    print(comparison_table(representatives))


def table_five() -> None:
    grid = {
        (board, model): sweep(model, board) for board in BOARDS for model in MODELS
    }
    print("\n--- best architectures per metric (Table V style) ---")
    print(best_architecture_table(grid))
    print("\nper-column detail:")
    for (board, model), reports in grid.items():
        winners = {
            metric: winners_with_ties(list(reports), metric).winners
            for metric in HEADLINE_METRICS
        }
        print(f"  {model} on {board}:")
        for metric, who in winners.items():
            rendered = ", ".join(f"{arch} ({count} CEs)" for arch, count in who)
            print(f"    {metric:<12} {rendered}")


def main() -> None:
    for board in BOARDS:
        for model in MODELS:
            table_one(board, model)
    table_five()


if __name__ == "__main__":
    main()
