#!/usr/bin/env python3
"""Quickstart: evaluate one multiple-CE accelerator in a few lines.

Builds a SegmentedRR accelerator (2 engines, round-robin over the layers)
for ResNet50 on the ZC706 board, runs the MCCM cost model, and prints the
four headline metrics plus the per-engine configuration.

Run:  python examples/quickstart.py
"""

from repro import evaluate
from repro.api import build_accelerator


def main() -> None:
    # One call: model (zoo name), board (Table II name), architecture
    # (template name or notation string), CE count.
    report = evaluate("resnet50", "zc706", "segmentedrr", ce_count=2)

    print(report.summary())
    print()
    print(f"notation:          {report.notation}")
    print(f"latency:           {report.latency_ms:.2f} ms")
    print(f"throughput:        {report.throughput_fps:.1f} FPS")
    print(f"on-chip buffers:   {report.buffer_requirement_mib:.2f} MiB")
    print(f"off-chip accesses: {report.access_mib:.1f} MiB/inference")
    print(f"PE utilization:    {100 * report.pe_utilization:.1f}%")

    # The same accelerator, inspected before evaluation.
    accelerator = build_accelerator("resnet50", "zc706", "segmentedrr", ce_count=2)
    print()
    print(accelerator.describe())

    # The notation syntax from the paper works directly as well.
    custom = evaluate("resnet50", "zc706", "{L1-L10: CE1, L11-Last: CE2-CE4}")
    print()
    print("custom mapping:", custom.summary())


if __name__ == "__main__":
    main()
