#!/usr/bin/env python3
"""Use case 2: fine-grained bottleneck analysis (paper Figs. 6 and 7).

Profiles a SegmentedRR accelerator for ResNet50 on the bandwidth-limited
ZC706: which segments are memory-bound, how much time the engines idle
waiting for data, and which data class (weights or feature maps) dominates
off-chip traffic — i.e. where compression would and would not pay off.

Run:  python examples/bottleneck_analysis.py
"""

from repro.analysis.bottleneck import profile_bottlenecks
from repro.analysis.breakdown import access_breakdown, per_segment_breakdown
from repro.api import evaluate


def main() -> None:
    report = evaluate("resnet50", "zc706", "segmentedrr", ce_count=2)
    profile = profile_bottlenecks(report)

    print(f"accelerator: {report.accelerator_name}  ({report.notation})")
    print(profile.table())

    bound = profile.memory_bound_segments()
    if bound:
        first, last = bound[0].index + 1, bound[-1].index + 1
        print(
            f"\nmemory-bound segments: {first}-{last} "
            f"({len(bound)} of {len(profile.segments)})"
        )
        print(
            "=> apply compression only to these segments' layers to keep "
            "overheads minimal (paper, use case 2)"
        )

    shares = access_breakdown(report)
    print(
        f"\noff-chip traffic: {shares.total_bytes / 2**20:.1f} MiB "
        f"({100 * shares.weight_fraction:.0f}% weights, "
        f"{100 * shares.fm_fraction:.0f}% feature maps)"
    )
    print(f"=> compressing {shares.dominant} has the most impact; "
          f"compressing the other class would be pure overhead")

    print("\nper-segment traffic (weights / FMs, MiB):")
    for label, weight_bytes, fm_bytes in per_segment_breakdown(report):
        print(f"  {label:<10} {weight_bytes / 2**20:7.2f} / {fm_bytes / 2**20:5.2f}")


if __name__ == "__main__":
    main()
