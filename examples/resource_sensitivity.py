#!/usr/bin/env python3
"""Resource sensitivity: which board resource limits each architecture?

The paper's Table V shows the best architecture shifts with the resource
budget. This example quantifies why: it scales each ZC706 resource (PEs,
BRAM, off-chip bandwidth) independently and measures how each
architecture's latency responds. An elasticity near -1 against PEs means
compute-bound; against bandwidth, memory-bound.

Run:  python examples/resource_sensitivity.py
"""

from repro.analysis.sensitivity import sensitivity_profile
from repro.api import resolve_board, resolve_model
from repro.core.architectures import build_template
from repro.core.builder import MultipleCEBuilder

MODEL = "resnet50"
BOARD = "zc706"


def main() -> None:
    graph = resolve_model(MODEL)
    board = resolve_board(BOARD)
    builder = MultipleCEBuilder(graph, board)

    print(f"{MODEL} on {BOARD}: latency elasticity per resource\n")
    for architecture, ce_count in (
        ("segmentedrr", 2),
        ("segmented", 5),
        ("hybrid", 5),
    ):
        spec = build_template(architecture, builder.conv_specs, ce_count)
        profile = sensitivity_profile(graph, board, spec, factors=(0.5, 1.0, 2.0))
        print(profile.table("latency"))
        dominant = profile.dominant_resource("latency")
        print(f"=> {spec.name} is {dominant}-limited on this board\n")


if __name__ == "__main__":
    main()
