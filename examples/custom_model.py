#!/usr/bin/env python3
"""Custom workloads: evaluate a user-defined CNN on a user-defined board.

The workload registry makes models and boards *data*: a CNN described as a
JSON document (the ``repro.cnn.serialize`` schema — the "DAG" input of the
paper's Fig. 3) and an FPGA described by its three resource budgets can be
registered at runtime and flow through every layer of the system — the
cached batch runtime, sweeps, DSE campaigns, and the HTTP service — exactly
like the built-in Table III / Table II workloads.

Run:  python examples/custom_model.py
"""

from repro import evaluate, register_board, register_model, sweep
from repro import unregister_board, unregister_model
from repro.workloads import REGISTRY

# A small edge CNN in the JSON dict schema (this could equally live in a
# .json file and be registered with `repro models register edge_net.json`,
# `repro evaluate --model-file edge_net.json ...`, or POST /models).
EDGE_NET = {
    "name": "edge_net",
    "layers": [
        {"name": "input", "kind": "input", "shape": [64, 64, 3]},
        {"name": "conv1", "kind": "conv", "inputs": ["input"],
         "input_shape": [64, 64, 3], "filters": 16, "kernel_size": [3, 3],
         "strides": [2, 2], "padding": "same"},
        {"name": "conv2", "kind": "conv", "inputs": ["conv1"],
         "input_shape": [32, 32, 16], "filters": 32, "kernel_size": [3, 3],
         "strides": [1, 1], "padding": "same"},
        {"name": "conv2_dw", "kind": "dwconv", "inputs": ["conv2"],
         "input_shape": [32, 32, 32], "kernel_size": [3, 3],
         "strides": [2, 2], "padding": "same"},
        {"name": "conv3", "kind": "conv", "inputs": ["conv2_dw"],
         "input_shape": [16, 16, 32], "filters": 64, "kernel_size": [1, 1],
         "strides": [1, 1], "padding": "same"},
        {"name": "conv4", "kind": "conv", "inputs": ["conv3"],
         "input_shape": [16, 16, 64], "filters": 64, "kernel_size": [3, 3],
         "strides": [2, 2], "padding": "same"},
        {"name": "gap", "kind": "global_pool", "inputs": ["conv4"],
         "input_shape": [8, 8, 64]},
        {"name": "fc", "kind": "dense", "inputs": ["gap"],
         "input_shape": [1, 1, 64], "units": 10},
    ],
}

# A hypothetical edge FPGA: DSPs, BRAM, bandwidth — plus an optional
# precision restriction validated against the library's datatypes.
EDGE_BOARD = {
    "name": "edge_fpga",
    "dsp_count": 360,
    "bram_mib": 1.5,
    "bandwidth_gbps": 4.2,
    "clock_mhz": 150,
    "supported_precisions": ["int8", "int16"],
}


def main() -> None:
    model = register_model(EDGE_NET)
    board = register_board(EDGE_BOARD)
    print(f"registered model {model!r} and board {board!r}")
    print(f"models now: {', '.join(REGISTRY.model_names())}")

    # Registered names work everywhere a zoo/Table II name does.
    report = evaluate(model, board, "segmentedrr", ce_count=2)
    print()
    print(report.summary())
    print(f"notation:   {report.notation}")
    print(f"throughput: {report.throughput_fps:.1f} FPS")

    # ... including the paper's architecture x CE-count sweep.
    results = sweep(model, board, ce_counts=range(2, 5))
    print()
    print(f"sweep: {len(results)} feasible, {len(results.skipped)} skipped")
    best = max(results, key=lambda item: item.throughput_fps)
    print(f"best:  {best.accelerator_name} at {best.throughput_fps:.1f} FPS")

    # Registrations are plain data; remove them when done.
    unregister_model(model)
    unregister_board(board)


if __name__ == "__main__":
    main()
