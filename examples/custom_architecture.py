#!/usr/bin/env python3
"""Express a custom multiple-CE accelerator with the paper's notation and
validate the analytical estimates against the reference simulator.

Shows the full workflow: a JSON-serialized CNN (the DAG input path of
Fig. 3), a notation-defined architecture, MCCM evaluation, and an Eq. 10
accuracy check against the cycle-approximate synthesis substitute.

Run:  python examples/custom_architecture.py
"""

from repro.api import build_accelerator
from repro.cnn.serialize import graph_from_json, graph_to_json
from repro.cnn.zoo import load_model
from repro.core.cost.model import default_model
from repro.synth import SynthesisSimulator, accuracy_percent

NOTATION = "{L1-L3: CE1-CE3, L4-L30: CE4, L31-Last: CE5}"


def main() -> None:
    # Round-trip the CNN through the JSON DAG format, as an external model
    # description would arrive.
    source = load_model("mobilenetv2")
    graph = graph_from_json(graph_to_json(source))
    print(f"model: {graph.name}, {graph.num_conv_layers} conv layers, "
          f"{graph.total_weights / 1e6:.1f}M weights")

    accelerator = build_accelerator(graph, "vcu108", NOTATION)
    print(accelerator.describe())

    report = default_model().evaluate(accelerator)
    print()
    print("MCCM estimates:")
    print(f"  latency    {report.latency_ms:9.2f} ms")
    print(f"  throughput {report.throughput_fps:9.1f} FPS")
    print(f"  buffers    {report.buffer_requirement_mib:9.2f} MiB")
    print(f"  accesses   {report.access_mib:9.1f} MiB")

    simulation = SynthesisSimulator(accelerator).run()
    print()
    print("reference simulation (synthesis substitute) and Eq. 10 accuracy:")
    rows = [
        ("latency", simulation.latency_cycles, report.latency_cycles, "cycles"),
        ("throughput", simulation.throughput_fps, report.throughput_fps, "FPS"),
        ("buffers", simulation.buffer_bytes, report.buffer_requirement_bytes, "bytes"),
        ("accesses", simulation.access_bytes, report.accesses.total_bytes, "bytes"),
    ]
    for name, reference, estimate, unit in rows:
        accuracy = accuracy_percent(reference, estimate)
        print(f"  {name:<11} ref {reference:>14,.0f} {unit:<7} "
              f"est {estimate:>14,.0f}  accuracy {accuracy:5.1f}%")


if __name__ == "__main__":
    main()
