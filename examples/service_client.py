#!/usr/bin/env python3
"""Evaluate designs over HTTP: the service and its client in one process.

Starts an :class:`EvaluationService` on an ephemeral port (exactly what
``repro serve`` runs behind a real port), then talks to it with
:class:`ServiceClient`: single evaluations, a warm-cache replay, a sweep
with skipped-configuration reporting, and a small design-space search.

Against a long-running server, drop the ``EvaluationService`` lines and
point ``ServiceClient`` at its URL, e.g. ``ServiceClient("http://host:8100")``.

Run:  python examples/service_client.py
"""

from repro.service import EvaluationService, ServiceClient, ServiceError


def main() -> None:
    with EvaluationService(port=0) as service:
        client = ServiceClient(service.url)

        health = client.healthz()
        print(f"service {health['version']} up at {service.url}")
        print(f"models: {', '.join(entry['name'] for entry in client.models())}")

        # One evaluation; the response rebuilds into a full CostReport,
        # bit-identical to calling repro.api.evaluate in-process.
        result = client.evaluate("squeezenet", "zc706", "segmentedrr", ce_count=2)
        print()
        print(result.report.summary())

        # The same request again: answered from the service's shared cache.
        replay = client.evaluate("squeezenet", "zc706", "segmentedrr", ce_count=2)
        print(f"replay cached: {replay.cached}")

        # A sweep over a CE-count range; infeasible configurations come
        # back with their reasons instead of disappearing.
        sweep = client.sweep("alexnet", "zc706", ce_counts={"min": 2, "max": 8})
        print()
        print(f"sweep: {len(sweep.reports)} feasible, {len(sweep.skipped)} skipped")
        for skip in sweep.skipped:
            print(f"  skipped {skip.architecture} x {skip.ce_count}: {skip.reason}")

        # A seeded design-space search; the Pareto front arrives as
        # (design coordinates, CostReport) pairs.
        dse = client.dse("squeezenet", "zc706", samples=50, seed=1)
        print()
        print(f"dse: {dse.space_size:,}-design space, front of {len(dse.front)}:")
        for design, report in dse.front:
            print(
                f"  {report.notation:<40} {report.throughput_fps:8.1f} FPS  "
                f"{report.buffer_requirement_mib:6.2f} MiB"
            )

        # Typed errors: bad requests surface as ServiceError with the
        # HTTP status and machine-readable kind.
        try:
            client.evaluate("squeezenet", "zc706", "warp-drive", ce_count=2)
        except ServiceError as error:
            print()
            print(f"as expected: {error}")


if __name__ == "__main__":
    main()
