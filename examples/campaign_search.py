#!/usr/bin/env python3
"""Resumable multi-objective DSE campaigns: evolve, kill, resume, compare.

Runs a small NSGA-II campaign over two (model, board) cells, checkpointing
after every generation; then simulates a crash partway through a second
run of the same spec and resumes it, verifying the resumed Pareto front is
bit-identical to the uninterrupted one. This is exactly the guarantee the
CI pipeline checks with a real SIGKILL (see docs/dse.md).

Run:  python examples/campaign_search.py
"""

import json
import tempfile
from pathlib import Path

from repro.api import campaign_status, resume_campaign, run_campaign
from repro.dse import CampaignSpec

SPEC = CampaignSpec.from_dict(
    {
        "name": "example-campaign",
        "seed": 17,
        "strategy": "evolve",
        "population": 10,
        "generations": 3,
        "cost_metric": "buffers",
        "cells": [
            {"model": "squeezenet", "board": "zc706"},
            {"model": "squeezenet", "board": "vcu108", "ce_counts": [2, 3, 4, 5]},
        ],
    }
)


def fronts(result):
    return json.dumps(
        [cell.to_dict()["front"] for cell in result.cells], sort_keys=True
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="mccm-campaign-"))

    # 1. The uninterrupted reference run.
    reference = run_campaign(SPEC, workdir / "reference.json")
    print(f"campaign {SPEC.name!r}: {reference.total_evaluations} evaluations")
    for cell in reference.cells:
        print(
            f"  {cell.cell.label:<22} archive {len(cell.front):>2}  "
            f"hypervolume {cell.hypervolume:.3e}"
        )

    # 2. The same campaign, "killed" after two evaluation rounds. The
    #    checkpoint on disk is exactly what a SIGKILL would have left.
    checkpoint = workdir / "interrupted.json"
    run_campaign(SPEC, checkpoint, max_rounds=2)
    status = campaign_status(checkpoint)
    states = ", ".join(
        f"{cell.cell.label}={cell.status}/gen{cell.generation}"
        for cell in status.cells
    )
    print(f"\ninterrupted after 2 rounds: {states}")

    # 3. Resume from the checkpoint and compare fronts byte for byte.
    resumed = resume_campaign(checkpoint)
    identical = fronts(resumed) == fronts(reference)
    print(f"resumed to completion: fronts bit-identical = {identical}")
    assert identical, "resume broke determinism!"

    # 4. The best throughput-per-buffer designs, from the archive.
    print("\ncombined Pareto front (throughput vs buffers):")
    for _design, report in resumed.combined_front():
        print(
            f"  {report.accelerator_name:<22}{report.throughput_fps:>8.1f} FPS  "
            f"{report.buffer_requirement_bytes / 2**20:>7.2f} MiB  {report.notation}"
        )


if __name__ == "__main__":
    main()
